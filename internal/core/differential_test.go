package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/comm"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rmat"
	"repro/internal/topology"
	"repro/internal/validate"
	"repro/internal/xrand"
)

// uniformEdges draws m edges uniformly over n vertices — the opposite degree
// profile of R-MAT (no hubs, so nearly everything classifies as L).
func uniformEdges(n int64, m int, seed uint64) []rmat.Edge {
	rng := xrand.NewXoshiro256(seed)
	edges := make([]rmat.Edge, m)
	for i := range edges {
		edges[i] = rmat.Edge{
			U: int64(rng.Uint64n(uint64(n))),
			V: int64(rng.Uint64n(uint64(n))),
		}
	}
	return edges
}

// TestDifferentialEngineVsBaseline is the property harness: across ~50 seeded
// graphs spanning both generators, scales, mesh shapes, direction modes,
// segmenting, and hierarchical forwarding — with roughly a third of the runs
// under an active fault plan — the 1.5D engine's parent tree must pass
// Graph 500 validation and induce exactly the levels of the vanilla 1D
// baseline engine (an independent implementation with none of the delegation
// machinery).
func TestDifferentialEngineVsBaseline(t *testing.T) {
	meshes := []topology.Mesh{
		{Rows: 1, Cols: 4}, {Rows: 2, Cols: 2}, {Rows: 4, Cols: 1},
		{Rows: 2, Cols: 3}, {Rows: 3, Cols: 2},
	}
	dirs := []DirectionMode{ModeSubIteration, ModeWholeIteration, ModePushOnly, ModePullOnly}
	scales := []int{8, 9, 10}

	const cases = 50
	for i := 0; i < cases; i++ {
		i := i
		scale := scales[i%len(scales)]
		mesh := meshes[i%len(meshes)]
		dir := dirs[i%len(dirs)]
		gen := "rmat"
		if i%2 == 1 {
			gen = "uniform"
		}
		segmented := i%7 == 0
		hier := i%6 == 3
		faulty := i%3 == 0 // ~1/3 of the corpus runs under a fault plan
		seed := uint64(1000 + i)

		name := fmt.Sprintf("%02d_%s_s%d_%dx%d_dir%d", i, gen, scale, mesh.Rows, mesh.Cols, dir)
		if segmented {
			name += "_seg"
		}
		if hier {
			name += "_hier"
		}
		if faulty {
			name += "_faults"
		}
		t.Run(name, func(t *testing.T) {
			if testing.Short() && i%5 != 0 {
				t.Skip("subset in -short mode")
			}
			t.Parallel()
			n := int64(1) << uint(scale)
			var edges []rmat.Edge
			if gen == "rmat" {
				cfg := rmat.Config{Scale: scale, Seed: seed}
				edges = rmat.Generate(cfg)
			} else {
				edges = uniformEdges(n, 8<<uint(scale), seed)
			}

			opt := Options{
				Mesh:         mesh,
				Thresholds:   partition.Thresholds{E: 256, H: 32},
				Direction:    dir,
				Segmented:    segmented,
				Hierarchical: hier,
			}
			if faulty {
				plan := faultinject.New(seed)
				plan.DelayProb = 0.01
				plan.FailProb = 0.001
				opt.Transport = plan
				opt.CollectiveDeadline = 120 * time.Microsecond
				opt.MaxRetries = 8
			}
			eng, err := NewEngine(n, edges, opt)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := baseline.New(n, edges, baseline.Options{Ranks: 4})
			if err != nil {
				t.Fatal(err)
			}

			roots := []int64{firstConnectedRootOf(eng)}
			if v := n / 2; eng.Part.Degrees[v] > 0 && v != roots[0] {
				roots = append(roots, v)
			}
			for _, root := range roots {
				res, err := eng.Run(root)
				if err != nil {
					t.Fatalf("engine root %d: %v", root, err)
				}
				if _, err := validate.BFS(n, edges, root, res.Parent); err != nil {
					t.Fatalf("engine root %d: validation: %v", root, err)
				}
				bres, err := ref.Run(root)
				if err != nil {
					t.Fatalf("baseline root %d: %v", root, err)
				}
				if _, err := validate.BFS(n, edges, root, bres.Parent); err != nil {
					t.Fatalf("baseline root %d: validation: %v", root, err)
				}
				// Parent choices may legitimately differ; BFS levels may not.
				refLvl, err := graph.Levels(bres.Parent, root)
				if err != nil {
					t.Fatal(err)
				}
				gotLvl, err := graph.Levels(res.Parent, root)
				if err != nil {
					t.Fatal(err)
				}
				for v := int64(0); v < n; v++ {
					if refLvl[v] != gotLvl[v] {
						t.Fatalf("root %d: level[%d] = %d, baseline %d", root, v, gotLvl[v], refLvl[v])
					}
				}
			}
		})
	}
}

// --- Sparse-tail differential corpus -------------------------------------
//
// The graphs below are deliberately tail-heavy: long paths, narrow grids,
// combs and stringy trees whose frontiers stay tiny for most of the
// traversal, so well over 70% of iterations qualify for the sparse-update
// exchange. Each case runs the adaptive sparse engine against a forced-dense
// run of the same partition and demands bit-exact parent arrays — the
// substitution contract of AllgatherSparse — plus the usual baseline level
// comparison and Graph 500 validation. A third of the corpus repeats the
// sparse run under a seeded fault plan.

// gridEdges builds a rows x cols 2D grid graph: diameter rows+cols-2, frontier
// width bounded by the antidiagonal.
func gridEdges(rows, cols int64) (int64, []rmat.Edge) {
	var edges []rmat.Edge
	at := func(r, c int64) int64 { return r*cols + c }
	for r := int64(0); r < rows; r++ {
		for c := int64(0); c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, rmat.Edge{U: at(r, c), V: at(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, rmat.Edge{U: at(r, c), V: at(r+1, c)})
			}
		}
	}
	return rows * cols, edges
}

// combEdges builds a spine path whose every vertex grows two tooth paths of
// the given length. With low thresholds the degree-4+ spine classifies as H
// hubs while the teeth stay L, so the tail exercises the H2L/L2H sparse pair
// (and with it the batched row exchange).
func combEdges(spine, tooth int64) (int64, []rmat.Edge) {
	var edges []rmat.Edge
	n := spine
	for s := int64(0); s+1 < spine; s++ {
		edges = append(edges, rmat.Edge{U: s, V: s + 1})
	}
	for s := int64(0); s < spine; s++ {
		for side := 0; side < 2; side++ {
			prev := s
			for i := int64(0); i < tooth; i++ {
				edges = append(edges, rmat.Edge{U: prev, V: n})
				prev = n
				n++
			}
		}
	}
	return n, edges
}

// stringyTreeEdges attaches vertex i to a random parent among its three
// predecessors: expected depth is a constant fraction of n, with branching
// factor barely above one — the worst case for dense per-destination buffers.
func stringyTreeEdges(n int64, seed uint64) []rmat.Edge {
	rng := xrand.NewXoshiro256(seed)
	edges := make([]rmat.Edge, 0, n-1)
	for i := int64(1); i < n; i++ {
		back := int64(rng.Uint64n(3)) + 1
		if back > i {
			back = i
		}
		edges = append(edges, rmat.Edge{U: i - back, V: i})
	}
	return edges
}

func anySparse(it IterTrace) bool {
	for _, on := range it.Sparse {
		if on {
			return true
		}
	}
	return false
}

func sparseIterFraction(res *Result) float64 {
	if len(res.Trace) == 0 {
		return 0
	}
	sparse := 0
	for _, it := range res.Trace {
		if anySparse(it) {
			sparse++
		}
	}
	return float64(sparse) / float64(len(res.Trace))
}

func sparseCalls(res *Result) int64 {
	v := res.Recorder.CommBreakdown()
	return v.Calls[comm.KindAllgatherSparse]
}

func TestDifferentialSparseTail(t *testing.T) {
	lowTh := partition.Thresholds{E: 8, H: 3}   // comb spines become H hubs
	allL := partition.Thresholds{E: 256, H: 32} // everything classifies L
	cases := []struct {
		name    string
		build   func() (int64, []rmat.Edge)
		th      partition.Thresholds
		mesh    topology.Mesh
		dir     DirectionMode
		hier    bool
		faulty  bool
		always  bool // additionally run SparseAlways
		maxIter int
		// minFrac is the demanded sparse-iteration fraction: 0.7 for the
		// push-mode cases; lower where sub-iteration direction choice sends
		// the late tail down the (already cheap) pull path instead.
		minFrac float64
	}{
		{"path512_1x4_push", func() (int64, []rmat.Edge) { return 512, pathEdges(512) }, allL,
			topology.Mesh{Rows: 1, Cols: 4}, ModePushOnly, false, false, false, 600, 0.7},
		{"path512_2x2_sub_faults", func() (int64, []rmat.Edge) { return 512, pathEdges(512) }, allL,
			topology.Mesh{Rows: 2, Cols: 2}, ModeSubIteration, false, true, false, 600, 0.7},
		{"path300_4x1_push_always", func() (int64, []rmat.Edge) { return 300, pathEdges(300) }, allL,
			topology.Mesh{Rows: 4, Cols: 1}, ModePushOnly, false, false, true, 400, 0.7},
		{"path512_2x3_sub", func() (int64, []rmat.Edge) { return 512, pathEdges(512) }, allL,
			topology.Mesh{Rows: 2, Cols: 3}, ModeSubIteration, false, false, false, 600, 0.7},
		{"grid32x32_2x2_push", func() (int64, []rmat.Edge) { return gridEdges(32, 32) }, allL,
			topology.Mesh{Rows: 2, Cols: 2}, ModePushOnly, false, false, false, 128, 0.7},
		{"grid32x32_2x2_sub_faults", func() (int64, []rmat.Edge) { return gridEdges(32, 32) }, allL,
			topology.Mesh{Rows: 2, Cols: 2}, ModeSubIteration, false, true, false, 128, 0.4},
		{"grid16x64_1x4_push_always", func() (int64, []rmat.Edge) { return gridEdges(16, 64) }, allL,
			topology.Mesh{Rows: 1, Cols: 4}, ModePushOnly, false, false, true, 128, 0.7},
		{"grid8x128_4x1_sub", func() (int64, []rmat.Edge) { return gridEdges(8, 128) }, allL,
			topology.Mesh{Rows: 4, Cols: 1}, ModeSubIteration, false, false, false, 160, 0.4},
		{"comb64x8_2x2_push", func() (int64, []rmat.Edge) { return combEdges(64, 8) }, lowTh,
			topology.Mesh{Rows: 2, Cols: 2}, ModePushOnly, false, false, false, 128, 0.7},
		{"comb64x8_2x2_sub_faults", func() (int64, []rmat.Edge) { return combEdges(64, 8) }, lowTh,
			topology.Mesh{Rows: 2, Cols: 2}, ModeSubIteration, false, true, false, 128, 0.4},
		{"comb96x4_2x3_push_always", func() (int64, []rmat.Edge) { return combEdges(96, 4) }, lowTh,
			topology.Mesh{Rows: 2, Cols: 3}, ModePushOnly, false, false, true, 160, 0.7},
		{"comb48x6_2x2_push_hier", func() (int64, []rmat.Edge) { return combEdges(48, 6) }, lowTh,
			topology.Mesh{Rows: 2, Cols: 2}, ModePushOnly, true, false, false, 128, 0.7},
		{"tree1024_2x2_push", func() (int64, []rmat.Edge) { return 1024, stringyTreeEdges(1024, 7) }, allL,
			topology.Mesh{Rows: 2, Cols: 2}, ModePushOnly, false, false, false, 1200, 0.7},
		{"tree1024_1x4_sub_faults", func() (int64, []rmat.Edge) { return 1024, stringyTreeEdges(1024, 8) }, allL,
			topology.Mesh{Rows: 1, Cols: 4}, ModeSubIteration, false, true, false, 1200, 0.7},
		{"tree768_4x1_sub_always", func() (int64, []rmat.Edge) { return 768, stringyTreeEdges(768, 9) }, allL,
			topology.Mesh{Rows: 4, Cols: 1}, ModeSubIteration, false, false, true, 1000, 0.7},
	}
	for i, tc := range cases {
		i, tc := i, tc
		t.Run(tc.name, func(t *testing.T) {
			if testing.Short() && i%3 != 0 {
				t.Skip("subset in -short mode")
			}
			t.Parallel()
			n, edges := tc.build()
			base := Options{
				Mesh:          tc.mesh,
				Thresholds:    tc.th,
				Direction:     tc.dir,
				Hierarchical:  tc.hier,
				MaxIterations: tc.maxIter,
			}
			optOf := func(mode SparseMode, faulty bool) Options {
				opt := base
				opt.SparseTail = mode
				if faulty {
					plan := faultinject.New(uint64(4000 + i))
					plan.DelayProb = 0.01
					plan.FailProb = 0.001
					opt.Transport = plan
					opt.CollectiveDeadline = 120 * time.Microsecond
					opt.MaxRetries = 8
				}
				return opt
			}
			dense, err := NewEngine(n, edges, optOf(SparseOff, false))
			if err != nil {
				t.Fatal(err)
			}
			auto, err := NewEngineFromPartition(dense.Part, optOf(SparseAuto, tc.faulty))
			if err != nil {
				t.Fatal(err)
			}
			ref, err := baseline.New(n, edges, baseline.Options{Ranks: 4, MaxIterations: tc.maxIter})
			if err != nil {
				t.Fatal(err)
			}

			root := firstConnectedRootOf(dense)
			dres, err := dense.Run(root)
			if err != nil {
				t.Fatalf("dense run: %v", err)
			}
			if got := sparseCalls(dres); got != 0 {
				t.Fatalf("forced-dense run made %d sparse exchanges", got)
			}
			ares, err := auto.Run(root)
			if err != nil {
				t.Fatalf("sparse run: %v", err)
			}
			// The substitution contract: not just the same BFS levels — the
			// identical parent array, bit for bit.
			for v := int64(0); v < n; v++ {
				if dres.Parent[v] != ares.Parent[v] {
					t.Fatalf("parent[%d]: dense %d, sparse %d", v, dres.Parent[v], ares.Parent[v])
				}
			}
			if _, err := validate.BFS(n, edges, root, ares.Parent); err != nil {
				t.Fatalf("sparse run validation: %v", err)
			}
			if frac := sparseIterFraction(ares); frac < tc.minFrac {
				t.Fatalf("only %.0f%% of iterations went sparse, want >= %.0f%%; the corpus graph is supposed to be tail-heavy", 100*frac, 100*tc.minFrac)
			}
			if sparseCalls(ares) == 0 {
				t.Fatal("adaptive run never used the sparse exchange")
			}
			bres, err := ref.Run(root)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			refLvl, err := graph.Levels(bres.Parent, root)
			if err != nil {
				t.Fatal(err)
			}
			gotLvl, err := graph.Levels(ares.Parent, root)
			if err != nil {
				t.Fatal(err)
			}
			for v := int64(0); v < n; v++ {
				if refLvl[v] != gotLvl[v] {
					t.Fatalf("level[%d] = %d, baseline %d", v, gotLvl[v], refLvl[v])
				}
			}
			if tc.always {
				alw, err := NewEngineFromPartition(dense.Part, optOf(SparseAlways, false))
				if err != nil {
					t.Fatal(err)
				}
				lres, err := alw.Run(root)
				if err != nil {
					t.Fatalf("always-sparse run: %v", err)
				}
				for v := int64(0); v < n; v++ {
					if dres.Parent[v] != lres.Parent[v] {
						t.Fatalf("always-sparse parent[%d]: dense %d, sparse %d", v, dres.Parent[v], lres.Parent[v])
					}
				}
			}
		})
	}
}

// --- Sort-adversarial key-stream corpus -----------------------------------
//
// The partitioning sort (LSD radix with a comparison fallback) has two
// classic adversaries: key streams that are almost entirely duplicates
// (every radix pass funnels through a handful of buckets, so the stable
// cursor bookkeeping carries nearly all the ordering) and key streams that
// arrive already sorted (every pass degenerates to a pure copy, where an
// off-by-one in bucket cursors shows up as a misplaced run boundary). The
// cases below build graphs that feed exactly those streams into the
// partitioner and demand that a faulted run with retries and checkpointing
// bit-matches the clean run of the same configuration: the scatter must stay
// stable under replay, not just correct once.

// dupHeavyEdges threads a binary tree through every vertex (log-diameter
// connectivity) and then piles m edges onto an 8x64 endpoint window, so the
// partitioning sort sees key streams where almost every key repeats hundreds
// of times and the eight window rows classify as delegated hubs.
func dupHeavyEdges(n int64, m int) []rmat.Edge {
	edges := make([]rmat.Edge, 0, int(n)+m)
	for i := int64(1); i < n; i++ {
		edges = append(edges, rmat.Edge{U: i / 2, V: i})
	}
	for i := 0; i < m; i++ {
		edges = append(edges, rmat.Edge{U: int64(i % 8), V: int64(i % 64)})
	}
	return edges
}

// sortedEdges emits every edge in ascending (U, V) order: the sort's input
// streams arrive already sorted, the worst case for wasted radix passes and
// the best detector for cursor off-by-ones.
func sortedEdges(n int64) []rmat.Edge {
	var edges []rmat.Edge
	for u := int64(0); u < n; u++ {
		for _, d := range []int64{1, 2, 5, 11} {
			if u+d < n {
				edges = append(edges, rmat.Edge{U: u, V: u + d})
			}
		}
	}
	return edges
}

func TestDifferentialSortKeyStreamsUnderFaults(t *testing.T) {
	cases := []struct {
		name  string
		n     int64
		edges []rmat.Edge
	}{
		{"duplicate_heavy", 1 << 10, dupHeavyEdges(1<<10, 8<<10)},
		{"already_sorted", 1 << 10, sortedEdges(1 << 10)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			opt := Options{
				Mesh:       topology.Mesh{Rows: 2, Cols: 2},
				Thresholds: partition.Thresholds{E: 256, H: 32},
				Direction:  ModeSubIteration,
			}
			clean, err := NewEngine(tc.n, tc.edges, opt)
			if err != nil {
				t.Fatal(err)
			}
			root := firstConnectedRootOf(clean)
			cres, err := clean.Run(root)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := validate.BFS(tc.n, tc.edges, root, cres.Parent); err != nil {
				t.Fatalf("clean run: validation: %v", err)
			}

			fopt := opt
			plan := faultinject.New(7)
			plan.DelayProb = 0.05
			plan.FailProb = 0.005
			fopt.Transport = plan
			fopt.CollectiveDeadline = 120 * time.Microsecond
			fopt.MaxRetries = 8
			fopt.CheckpointDir = t.TempDir()
			fopt.CheckpointEvery = 1
			faulted, err := NewEngine(tc.n, tc.edges, fopt)
			if err != nil {
				t.Fatal(err)
			}
			fres, err := faulted.Run(root)
			if err != nil {
				t.Fatalf("faulted run: %v", err)
			}
			if _, err := validate.BFS(tc.n, tc.edges, root, fres.Parent); err != nil {
				t.Fatalf("faulted run: validation: %v", err)
			}
			if fres.Faults.Injected() == 0 && fres.Retries == 0 {
				t.Fatalf("fault plan drew nothing (seed 7, delay=0.05, fail=0.005); raise the rates so the retry path is actually exercised")
			}
			for v := int64(0); v < tc.n; v++ {
				if cres.Parent[v] != fres.Parent[v] {
					t.Fatalf("parent[%d]: clean %d, faulted %d — retry/checkpoint replay diverged", v, cres.Parent[v], fres.Parent[v])
				}
			}
		})
	}
}
