package core

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/perfmodel"
	"repro/internal/rmat"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/validate"
)

// checkAgainstReference runs the engine and asserts (a) full Graph 500
// validation and (b) reachable set + level agreement with a sequential BFS.
func checkAgainstReference(t *testing.T, n int64, edges []rmat.Edge, opt Options, roots []int64) {
	t.Helper()
	eng, err := NewEngine(n, edges, opt)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromEdges(n, edges, graph.BuildOptions{Symmetrize: true, DropSelfLoops: true})
	for _, root := range roots {
		res, err := eng.Run(root)
		if err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
		if _, err := validate.BFS(n, edges, root, res.Parent); err != nil {
			t.Fatalf("root %d: graph500 validation: %v", root, err)
		}
		ref := g.SequentialBFS(root)
		refLvl, err := graph.Levels(ref, root)
		if err != nil {
			t.Fatal(err)
		}
		gotLvl, err := graph.Levels(res.Parent, root)
		if err != nil {
			t.Fatalf("root %d: engine levels: %v", root, err)
		}
		for v := int64(0); v < n; v++ {
			if refLvl[v] != gotLvl[v] {
				t.Fatalf("root %d: level[%d] = %d, reference %d", root, v, gotLvl[v], refLvl[v])
			}
		}
	}
}

func rmatEdges(t *testing.T, scale int, seed uint64) (int64, []rmat.Edge) {
	t.Helper()
	cfg := rmat.Config{Scale: scale, Seed: seed}
	return cfg.NumVertices(), rmat.Generate(cfg)
}

func TestEngineMatchesReferenceDefault(t *testing.T) {
	n, edges := rmatEdges(t, 11, 1)
	opt := Options{Mesh: topology.Mesh{Rows: 2, Cols: 2}, Thresholds: partition.Thresholds{E: 512, H: 64}}
	checkAgainstReference(t, n, edges, opt, []int64{0, 5, 100, 2047})
}

func TestEngineAllDirectionModes(t *testing.T) {
	n, edges := rmatEdges(t, 10, 2)
	for _, mode := range []DirectionMode{ModeSubIteration, ModeWholeIteration, ModePushOnly, ModePullOnly} {
		opt := Options{
			Mesh:       topology.Mesh{Rows: 2, Cols: 2},
			Thresholds: partition.Thresholds{E: 256, H: 32},
			Direction:  mode,
		}
		t.Run(fmt.Sprintf("mode%d", mode), func(t *testing.T) {
			checkAgainstReference(t, n, edges, opt, []int64{3, 999})
		})
	}
}

func TestEngineSegmentedPull(t *testing.T) {
	n, edges := rmatEdges(t, 11, 3)
	opt := Options{
		Mesh:       topology.Mesh{Rows: 2, Cols: 2},
		Thresholds: partition.Thresholds{E: 512, H: 64},
		Segmented:  true,
	}
	checkAgainstReference(t, n, edges, opt, []int64{0, 42, 1234})
}

func TestEngineSegmentAdaptive(t *testing.T) {
	// Adaptive segmenting must stay correct across many runs on one engine
	// (the adapter state persists and keeps switching arms while exploring)
	// and in pull-heavy mode where the adaptive kernel actually runs every
	// iteration.
	n, edges := rmatEdges(t, 11, 3)
	for _, mode := range []DirectionMode{ModeSubIteration, ModePullOnly} {
		opt := Options{
			Mesh:            topology.Mesh{Rows: 2, Cols: 2},
			Thresholds:      partition.Thresholds{E: 512, H: 64},
			Direction:       mode,
			SegmentAdaptive: true,
		}
		t.Run(fmt.Sprintf("mode%d", mode), func(t *testing.T) {
			checkAgainstReference(t, n, edges, opt, []int64{0, 42, 777, 1234})
		})
	}
}

func TestEngineSegmentAdaptiveExploresBothArms(t *testing.T) {
	// Across enough pull iterations the adapter must have measured both the
	// flat and the segmented kernel at least once in some bucket — the
	// crossover search cannot work if one arm is never run.
	n, edges := rmatEdges(t, 10, 9)
	opt := Options{
		Mesh:            topology.Mesh{Rows: 2, Cols: 2},
		Thresholds:      partition.Thresholds{E: 256, H: 32},
		Direction:       ModePullOnly,
		SegmentAdaptive: true,
	}
	eng, err := NewEngine(n, edges, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, root := range []int64{0, 3, 99, 511} {
		if _, err := eng.Run(root); err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
	}
	var flat, seg int64
	for _, a := range eng.segAdapt {
		for i := range a.buckets {
			flat += a.buckets[i].n[segArmFlat]
			seg += a.buckets[i].n[segArmSeg]
		}
	}
	if flat == 0 || seg == 0 {
		t.Fatalf("adapter observations flat=%d seg=%d; both arms must be explored", flat, seg)
	}
}

func TestEngineSegmentedMatchesUnsegmented(t *testing.T) {
	n, edges := rmatEdges(t, 10, 4)
	base := Options{Mesh: topology.Mesh{Rows: 2, Cols: 2}, Thresholds: partition.Thresholds{E: 256, H: 32}, Direction: ModePullOnly}
	segOpt := base
	segOpt.Segmented = true
	e1, err := NewEngine(n, edges, base)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(n, edges, segOpt)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := e1.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	// Same reachable set and levels (parents may differ, both valid).
	l1, _ := graph.Levels(r1.Parent, 7)
	l2, _ := graph.Levels(r2.Parent, 7)
	for v := range l1 {
		if l1[v] != l2[v] {
			t.Fatalf("level[%d]: %d vs %d", v, l1[v], l2[v])
		}
	}
}

func TestEngineMeshShapes(t *testing.T) {
	n, edges := rmatEdges(t, 10, 5)
	for _, mesh := range []topology.Mesh{
		{Rows: 1, Cols: 1}, {Rows: 1, Cols: 4}, {Rows: 4, Cols: 1},
		{Rows: 2, Cols: 4}, {Rows: 4, Cols: 4},
	} {
		t.Run(fmt.Sprintf("%dx%d", mesh.Rows, mesh.Cols), func(t *testing.T) {
			opt := Options{Mesh: mesh, Thresholds: partition.Thresholds{E: 256, H: 32}}
			checkAgainstReference(t, n, edges, opt, []int64{0, 511})
		})
	}
}

func TestEngineThresholdExtremes(t *testing.T) {
	n, edges := rmatEdges(t, 9, 6)
	cases := []partition.Thresholds{
		{E: 64, H: 64},           // no H: degenerates to 1D with E delegates
		{E: 1 << 30, H: 1},       // no L... every connected vertex is a hub (2D)
		{E: 1 << 30, H: 1 << 29}, // no hubs at all: pure 1D
		{E: 100, H: 10},
	}
	for i, th := range cases {
		t.Run(fmt.Sprintf("case%d", i), func(t *testing.T) {
			opt := Options{Mesh: topology.Mesh{Rows: 2, Cols: 2}, Thresholds: th}
			checkAgainstReference(t, n, edges, opt, []int64{1, 300})
		})
	}
}

func TestEngineHierarchicalL2L(t *testing.T) {
	n, edges := rmatEdges(t, 10, 7)
	opt := Options{
		Mesh:         topology.Mesh{Rows: 2, Cols: 4},
		Thresholds:   partition.Thresholds{E: 512, H: 64},
		Hierarchical: true,
	}
	checkAgainstReference(t, n, edges, opt, []int64{0, 77})
}

func TestEngineRankWorkersVertexCut(t *testing.T) {
	n, edges := rmatEdges(t, 10, 8)
	opt := Options{
		Mesh:        topology.Mesh{Rows: 2, Cols: 2},
		Thresholds:  partition.Thresholds{E: 256, H: 32},
		RankWorkers: 4,
		Direction:   ModePushOnly, // exercise the vertex-cut push hard
	}
	checkAgainstReference(t, n, edges, opt, []int64{0, 13})
}

func TestEngineIsolatedRoot(t *testing.T) {
	// A root with no edges: the BFS must terminate immediately with only the
	// root reached.
	n := int64(1 << 8)
	edges := []rmat.Edge{{U: 0, V: 1}, {U: 1, V: 2}}
	opt := Options{Mesh: topology.Mesh{Rows: 2, Cols: 2}, Thresholds: partition.Thresholds{E: 16, H: 4}}
	eng, err := NewEngine(n, edges, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Parent[200] != 200 {
		t.Fatal("root not its own parent")
	}
	reached := 0
	for _, p := range res.Parent {
		if p >= 0 {
			reached++
		}
	}
	if reached != 1 {
		t.Fatalf("reached %d vertices from isolated root", reached)
	}
}

func TestEngineRootIsHub(t *testing.T) {
	n, edges := rmatEdges(t, 10, 9)
	opt := Options{Mesh: topology.Mesh{Rows: 2, Cols: 2}, Thresholds: partition.Thresholds{E: 256, H: 32}}
	eng, err := NewEngine(n, edges, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Pick the highest-degree vertex: certainly class E.
	root := eng.Part.Hubs.Orig[0]
	checkAgainstReference(t, n, edges, opt, []int64{root})
	_ = eng
}

func TestEngineRejectsBadInput(t *testing.T) {
	n, edges := rmatEdges(t, 8, 10)
	if _, err := NewEngine(n, edges, Options{}); err == nil {
		t.Fatal("missing mesh and ranks should error")
	}
	eng, err := NewEngine(n, edges, Options{Ranks: 4, Thresholds: partition.Thresholds{E: 64, H: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(-1); err == nil {
		t.Fatal("negative root accepted")
	}
	if _, err := eng.Run(n); err == nil {
		t.Fatal("out-of-range root accepted")
	}
}

func TestResultMetrics(t *testing.T) {
	n, edges := rmatEdges(t, 10, 11)
	opt := Options{Ranks: 4, Thresholds: partition.Thresholds{E: 256, H: 32}}
	eng, err := NewEngine(n, edges, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 || len(res.Trace) != res.Iterations {
		t.Fatalf("iterations %d, trace %d", res.Iterations, len(res.Trace))
	}
	if res.TraversedEdges <= 0 {
		t.Fatal("no traversed edges counted")
	}
	if res.GTEPS() <= 0 {
		t.Fatal("GTEPS not positive")
	}
	if res.Recorder.TotalEdges() == 0 {
		t.Fatal("recorder saw no edge touches")
	}
	if len(res.PerRank) != 4 {
		t.Fatalf("%d per-rank recorders", len(res.PerRank))
	}
	// Traversed edges must not exceed input edges.
	if res.TraversedEdges > int64(len(edges)) {
		t.Fatalf("traversed %d > input %d", res.TraversedEdges, len(edges))
	}
}

func TestTraceActivationBreakdown(t *testing.T) {
	// Hubs should be densely active earlier than L (the Figure 5 pattern).
	n, edges := rmatEdges(t, 13, 12)
	opt := Options{Ranks: 4, Thresholds: partition.Thresholds{E: 1024, H: 64}}
	eng, err := NewEngine(n, edges, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	peakIter := func(f func(IterTrace) int64) int {
		best, arg := int64(-1), 0
		for i, it := range res.Trace {
			if f(it) > best {
				best, arg = f(it), i
			}
		}
		return arg
	}
	hubPeak := peakIter(func(it IterTrace) int64 { return it.ActiveE + it.ActiveH })
	lPeak := peakIter(func(it IterTrace) int64 { return it.ActiveL })
	if hubPeak > lPeak {
		t.Fatalf("hub activation peak (iter %d) after L peak (iter %d); Figure 5 pattern violated", hubPeak, lPeak)
	}
}

func TestSubIterationTouchesFewerEdges(t *testing.T) {
	// The point of sub-iteration direction optimization: fewer edges touched
	// than whole-iteration direction optimization, while both stay correct.
	n, edges := rmatEdges(t, 13, 13)
	th := partition.Thresholds{E: 1024, H: 64}
	run := func(mode DirectionMode) int64 {
		eng, err := NewEngine(n, edges, Options{Ranks: 4, Thresholds: th, Direction: mode})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Recorder.TotalEdges()
	}
	sub := run(ModeSubIteration)
	push := run(ModePushOnly)
	if sub >= push {
		t.Fatalf("sub-iteration touched %d edges, plain push %d; direction optimization saves nothing", sub, push)
	}
}

func TestDefaultThresholds(t *testing.T) {
	for scale := 4; scale <= 40; scale++ {
		th := DefaultThresholds(scale)
		if err := th.Validate(); err != nil {
			t.Fatalf("scale %d: %v", scale, err)
		}
	}
}

func TestEdgeCutChunksBalance(t *testing.T) {
	// 1 heavy vertex followed by many light ones: the cut must isolate the
	// heavy one rather than splitting by count.
	prefix := []int64{0}
	weights := append([]int64{1000}, make([]int64, 99)...)
	for i := range weights {
		if i > 0 {
			weights[i] = 1
		}
		prefix = append(prefix, prefix[len(prefix)-1]+weights[i])
	}
	chunks := edgeCutChunks(prefix, 4)
	if len(chunks) == 0 {
		t.Fatal("no chunks")
	}
	// Coverage: contiguous, complete.
	if chunks[0][0] != 0 || chunks[len(chunks)-1][1] != 100 {
		t.Fatalf("chunks %v do not cover [0,100)", chunks)
	}
	for i := 1; i < len(chunks); i++ {
		if chunks[i][0] != chunks[i-1][1] {
			t.Fatalf("chunks %v not contiguous", chunks)
		}
	}
	// The heavy vertex must be alone in its chunk.
	if chunks[0][1] != 1 {
		t.Fatalf("first chunk %v should contain only the heavy vertex", chunks[0])
	}
}

func TestDirectionsConsistentAcrossRanks(t *testing.T) {
	// Deadlock regression guard: a run completing at all proves collective
	// lockstep, but also confirm the recorded directions are plausible: at
	// least one pull occurs on a dense graph under sub-iteration mode.
	n, edges := rmatEdges(t, 12, 14)
	eng, err := NewEngine(n, edges, Options{Ranks: 8, Thresholds: partition.Thresholds{E: 512, H: 64}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	sawPull := false
	for _, it := range res.Trace {
		for _, d := range it.Directions {
			if d == stats.DirPull {
				sawPull = true
			}
		}
	}
	if !sawPull {
		t.Fatal("sub-iteration mode never chose pull on a dense R-MAT graph")
	}
}

func TestDelayedReductionSavesTraffic(t *testing.T) {
	// Section 5: delaying the delegated-parent reduction to the end of the
	// run must (a) not change results and (b) move strictly less
	// reduce-scatter volume than per-iteration reduction.
	n, edges := rmatEdges(t, 12, 15)
	run := func(immediate bool) (*Result, int64) {
		eng, err := NewEngine(n, edges, Options{Ranks: 4, ImmediateParentReduction: immediate})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(1)
		if err != nil {
			t.Fatal(err)
		}
		v := res.Recorder.Volumes[stats.PhaseReduce]
		return res, v.TotalBytes()
	}
	delayed, delayedBytes := run(false)
	immediate, immediateBytes := run(true)
	if delayedBytes >= immediateBytes {
		t.Fatalf("delayed reduction moved %d bytes, immediate %d; no saving", delayedBytes, immediateBytes)
	}
	dl, err := graph.Levels(delayed.Parent, 1)
	if err != nil {
		t.Fatal(err)
	}
	il, err := graph.Levels(immediate.Parent, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := range dl {
		if dl[v] != il[v] {
			t.Fatalf("level[%d] differs between reduction schemes", v)
		}
	}
	if _, err := validate.BFS(n, edges, 1, immediate.Parent); err != nil {
		t.Fatal(err)
	}
}

func TestModeledSecondsPositiveAndOrdered(t *testing.T) {
	// Modeled time must be positive and grow when the run does more work.
	n, edges := rmatEdges(t, 12, 16)
	cal := perfmodel.DefaultCalibration()
	run := func(mode DirectionMode) (float64, *Engine, *Result) {
		eng, err := NewEngine(n, edges, Options{Ranks: 4, Direction: mode})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(1)
		if err != nil {
			t.Fatal(err)
		}
		return eng.ModeledSeconds(res, cal), eng, res
	}
	optSec, eng, res := run(ModeSubIteration)
	pushSec, _, _ := run(ModePushOnly)
	if optSec <= 0 || pushSec <= 0 {
		t.Fatal("modeled seconds not positive")
	}
	if pushSec <= optSec {
		t.Fatalf("push-only modeled %.3gs, optimized %.3gs; more work should cost more", pushSec, optSec)
	}
	if g := eng.ModeledGTEPS(res, cal); g <= 0 {
		t.Fatal("modeled GTEPS not positive")
	}
	if commTotal(res.Recorder.CommBreakdown()) <= 0 {
		t.Fatal("no communication recorded at 4 ranks")
	}
}
