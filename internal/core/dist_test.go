package core

import (
	"fmt"
	"os"
	"os/exec"
	"slices"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/faultinject"
	"repro/internal/rmat"
	"repro/internal/topology"
	"repro/internal/wire"
)

// distCoreOpts builds one Options per process for an in-test socket world:
// the processes are goroutine-hosted comm.Groups talking over real unix
// sockets in a temp dir, each hosting an equal contiguous share of the
// mesh's ranks. base supplies everything but the Dist wiring.
func distCoreOpts(t *testing.T, procs int, base Options) []Options {
	t.Helper()
	ranks := base.Mesh.Size()
	if ranks%procs != 0 {
		t.Fatalf("mesh size %d not divisible by %d procs", ranks, procs)
	}
	return distCoreOptsProcOf(t, procs, comm.ContiguousProcOf(ranks, ranks/procs), base)
}

// distCoreOptsProcOf is distCoreOpts with an explicit rank→process map, for
// worlds where the split is not an even contiguous share — in particular
// spare processes, which appear in the group but host no ranks.
func distCoreOptsProcOf(t *testing.T, procs int, procOf []int, base Options) []Options {
	t.Helper()
	dir := t.TempDir()
	addrs := make([]string, procs)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("unix:%s/p%d.sock", dir, i)
	}
	opts := make([]Options, procs)
	for i := 0; i < procs; i++ {
		g, err := comm.NewGroup(wire.Config{
			Proc:           i,
			Addrs:          addrs,
			HeartbeatEvery: 10 * time.Millisecond,
			// No scenario in this file kills a real process, so peer-death
			// detection is pure false-positive risk; keep it far above any
			// single-core scheduler stall.
			PeerDeadAfter: 30 * time.Second,
			DialTimeout:   time.Second,
			WriteTimeout:  2 * time.Second,
			BackoffBase:   2 * time.Millisecond,
			BackoffCap:    50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { g.Close() })
		o := base
		o.Dist = &comm.DistConfig{Group: g, ProcOf: procOf}
		opts[i] = o
	}
	return opts
}

// runDistEngines builds one engine per process over the same graph and runs
// body on each concurrently (the SPMD contract), failing the test on any
// error and returning the per-process outcomes.
func runDistEngines[T any](t *testing.T, n int64, edges []rmat.Edge, opts []Options,
	body func(e *Engine) (T, error)) []T {
	t.Helper()
	engines := make([]*Engine, len(opts))
	for i, o := range opts {
		eng, err := NewEngine(n, edges, o)
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
	}
	out := make([]T, len(engines))
	errs := make([]error, len(engines))
	var wg sync.WaitGroup
	for i, eng := range engines {
		wg.Add(1)
		go func(i int, eng *Engine) {
			defer wg.Done()
			out[i], errs[i] = body(eng)
		}(i, eng)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("proc %d: %v", i, err)
		}
	}
	return out
}

// TestDistBFSMatchesInProcess is the backend-differential anchor: the same
// BFS on the same graph must produce a bit-identical parent array whether the
// four ranks run as goroutines in one process or split 2x2 across a socket
// world. Iteration counts and the TEPS numerator must agree too — the socket
// backend is a transport change, not a schedule change.
func TestDistBFSMatchesInProcess(t *testing.T) {
	cfg := rmat.Config{Scale: 9, Seed: 11}
	n, edges := cfg.NumVertices(), rmat.Generate(cfg)
	base := Options{Mesh: topology.Mesh{Rows: 2, Cols: 2}, Thresholds: DefaultThresholds(9)}

	ref, err := NewEngine(n, edges, base)
	if err != nil {
		t.Fatal(err)
	}
	root := firstConnectedRootOf(ref)
	refRes, err := ref.Run(root)
	if err != nil {
		t.Fatal(err)
	}

	results := runDistEngines(t, n, edges, distCoreOpts(t, 2, base),
		func(e *Engine) (*Result, error) { return e.Run(root) })
	for proc, res := range results {
		if !slices.Equal(res.Parent, refRes.Parent) {
			t.Errorf("proc %d: socket-backend parent array differs from in-process", proc)
		}
		if res.Iterations != refRes.Iterations {
			t.Errorf("proc %d: %d iterations, in-process took %d", proc, res.Iterations, refRes.Iterations)
		}
		if res.TraversedEdges != refRes.TraversedEdges {
			t.Errorf("proc %d: traversed %d edges, in-process %d", proc, res.TraversedEdges, refRes.TraversedEdges)
		}
	}
}

// TestDistWorkloadDifferential runs the per-workload differential corpus over
// both backends: WCC, k-core and SSSP on an in-process world vs the same
// mesh split across a two-process socket world, bit-identical outputs
// required on every process.
func TestDistWorkloadDifferential(t *testing.T) {
	for _, seed := range []uint64{3, 17} {
		cfg := rmat.Config{Scale: 8, Seed: seed}
		n, edges := cfg.NumVertices(), rmat.Generate(cfg)
		base := Options{Mesh: topology.Mesh{Rows: 2, Cols: 2}, Thresholds: DefaultThresholds(8)}
		ref, err := NewEngine(n, edges, base)
		if err != nil {
			t.Fatal(err)
		}
		root := firstConnectedRootOf(ref)

		t.Run(fmt.Sprintf("wcc/seed%d", seed), func(t *testing.T) {
			want, err := ref.RunWCC()
			if err != nil {
				t.Fatal(err)
			}
			got := runDistEngines(t, n, edges, distCoreOpts(t, 2, base),
				func(e *Engine) (*WorkloadResult, error) { return e.RunWCC() })
			for proc, res := range got {
				if !slices.Equal(res.Label, want.Label) {
					t.Errorf("proc %d: WCC labels differ from in-process", proc)
				}
				if res.Components != want.Components {
					t.Errorf("proc %d: %d components, want %d", proc, res.Components, want.Components)
				}
			}
		})
		t.Run(fmt.Sprintf("kcore/seed%d", seed), func(t *testing.T) {
			want, err := ref.RunKCore(2)
			if err != nil {
				t.Fatal(err)
			}
			got := runDistEngines(t, n, edges, distCoreOpts(t, 2, base),
				func(e *Engine) (*WorkloadResult, error) { return e.RunKCore(2) })
			for proc, res := range got {
				if !slices.Equal(res.InCore, want.InCore) {
					t.Errorf("proc %d: k-core membership differs from in-process", proc)
				}
				if res.CoreSize != want.CoreSize {
					t.Errorf("proc %d: core size %d, want %d", proc, res.CoreSize, want.CoreSize)
				}
			}
		})
		t.Run(fmt.Sprintf("sssp/seed%d", seed), func(t *testing.T) {
			want, err := ref.RunSSSP(root, seed, 0)
			if err != nil {
				t.Fatal(err)
			}
			got := runDistEngines(t, n, edges, distCoreOpts(t, 2, base),
				func(e *Engine) (*WorkloadResult, error) { return e.RunSSSP(root, seed, 0) })
			for proc, res := range got {
				if !slices.Equal(res.Dist, want.Dist) {
					t.Errorf("proc %d: SSSP distances differ from in-process", proc)
				}
				if !slices.Equal(res.Parent, want.Parent) {
					t.Errorf("proc %d: SSSP parents differ from in-process", proc)
				}
				if res.Relaxations != want.Relaxations {
					t.Errorf("proc %d: %d relaxations, want %d", proc, res.Relaxations, want.Relaxations)
				}
			}
		})
	}
}

// TestDistKillChaosMatrix replays the kill chaos scenarios on the socket
// backend: rank-level fail-stops injected on one process must surface as
// agreed ErrRankDead on both, the shared checkpoint directory must carry the
// epoch rebuild, and every recovered BFS must match the fault-free levels on
// every process. Scenarios are chosen so the dead slot re-homes onto a rank
// of the same process (contiguous 2-ranks-per-proc on a 2x2 mesh keeps
// mesh-row mates co-located), matching the once-per-plan kill latch.
func TestDistKillChaosMatrix(t *testing.T) {
	cfg := rmat.Config{Scale: 9, Seed: 11}
	n, edges := cfg.NumVertices(), rmat.Generate(cfg)
	base := Options{Mesh: topology.Mesh{Rows: 2, Cols: 2}, Thresholds: DefaultThresholds(9)}
	ref, err := NewEngine(n, edges, base)
	if err != nil {
		t.Fatal(err)
	}
	root := firstConnectedRootOf(ref)
	refLvl := referenceLevels(t, n, edges, root)

	scenarios := []struct {
		name      string
		transport func() comm.Transport // fresh instance per process
		mode      RecoveryMode
		lost      int64
	}{
		{
			name: "kill-remote-proc-rank/shrink",
			transport: func() comm.Transport {
				return faultinject.MustParse("kill@rank=3,iter=2")
			},
			mode: RecoverShrink, lost: 1,
		},
		{
			name: "kill-remote-proc-rank/restore",
			transport: func() comm.Transport {
				return faultinject.MustParse("kill@rank=3,iter=2")
			},
			mode: RecoverRestore, lost: 1,
		},
		{
			name: "kill-during-setup",
			transport: func() comm.Transport {
				return &chaosTransport{kills: []*killCall{{rank: 0, iter: -1, tag: TagSetup}}}
			},
			mode: RecoverShrink, lost: 1,
		},
		{
			name: "two-kills-both-procs",
			transport: func() comm.Transport {
				return &chaosTransport{kills: []*killCall{
					{rank: 1, iter: 1, tag: 0}, {rank: 2, iter: 1, tag: 0}}}
			},
			mode: RecoverShrink, lost: 2,
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			ckpt := t.TempDir()
			opts := distCoreOpts(t, 2, base)
			for i := range opts {
				opts[i].Transport = sc.transport()
				opts[i].CheckpointDir = ckpt
				opts[i].Recovery = sc.mode
			}
			results := runDistEngines(t, n, edges, opts,
				func(e *Engine) (*Result, error) { return e.Run(root) })
			var kills int64
			for proc, res := range results {
				checkRecovered(t, n, edges, root, res.Parent, refLvl,
					fmt.Sprintf("%s/proc%d", sc.name, proc))
				if res.Recovery.Epochs != 1 {
					t.Errorf("proc %d: %d epochs, want 1", proc, res.Recovery.Epochs)
				}
				if res.Recovery.RanksLost != sc.lost {
					t.Errorf("proc %d: %d ranks lost, want %d", proc, res.Recovery.RanksLost, sc.lost)
				}
				kills += res.Faults.Kills
			}
			// Kills are counted by the process hosting the victim rank, so the
			// per-process tallies must sum to the scenario's casualty count.
			if kills != sc.lost {
				t.Errorf("kills across procs = %d, want %d", kills, sc.lost)
			}
		})
	}
}

// Environment keys of the SIGKILL recovery fixture (parent test below).
const (
	distHelperEnv = "CORE_DIST_HELPER"
	distProcEnv   = "CORE_DIST_PROC"
	distAddrsEnv  = "CORE_DIST_ADDRS"
	distCkptEnv   = "CORE_DIST_CKPT"
	distOutEnv    = "CORE_DIST_OUT"
	distRootEnv   = "CORE_DIST_ROOT"
	distKillEnv   = "CORE_DIST_KILL_ITER"
)

// sigkillAt is a transport that SIGKILLs its own process at the first
// intercepted collective of the given iteration: the real fail-stop. Nothing
// is flushed, no goodbye frame is sent — the peer learns of the death from
// its heartbeat detector alone.
type sigkillAt struct{ iter int64 }

func (s *sigkillAt) Intercept(c comm.Call) comm.FaultAction {
	if c.Iter == s.iter {
		_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	}
	return comm.FaultAction{}
}

// TestDistHelperProcess is not a test: it is the subprocess body of
// TestDistRealSIGKILLRecovery, entered only when the parent re-executes the
// test binary with the fixture environment set.
func TestDistHelperProcess(t *testing.T) {
	if os.Getenv(distHelperEnv) != "1" {
		t.Skip("subprocess fixture of TestDistRealSIGKILLRecovery")
	}
	proc, err := strconv.Atoi(os.Getenv(distProcEnv))
	if err != nil {
		t.Fatal(err)
	}
	root, err := strconv.ParseInt(os.Getenv(distRootEnv), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	addrs := strings.Split(os.Getenv(distAddrsEnv), ",")
	g, err := comm.NewGroup(wire.Config{
		Proc:           proc,
		Addrs:          addrs,
		HeartbeatEvery: 20 * time.Millisecond,
		// Generous: on a loaded single-core CI box a healthy test process can
		// be starved of CPU for whole seconds, and a starved process sends no
		// heartbeats. The budget must outlast scheduler hiccups, not just
		// network ones, or the detector fires on a live peer.
		PeerDeadAfter: 10 * time.Second,
		DialTimeout:   time.Second,
		WriteTimeout:  2 * time.Second,
		BackoffBase:   5 * time.Millisecond,
		BackoffCap:    100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	cfg := rmat.Config{Scale: 10, Seed: 11}
	n, edges := cfg.NumVertices(), rmat.Generate(cfg)
	opt := Options{
		Mesh:          topology.Mesh{Rows: 2, Cols: 2},
		Thresholds:    DefaultThresholds(10),
		Dist:          &comm.DistConfig{Group: g, ProcOf: comm.ContiguousProcOf(4, 2)},
		CheckpointDir: os.Getenv(distCkptEnv),
	}
	if s := os.Getenv(distKillEnv); s != "" {
		iter, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		opt.Transport = &sigkillAt{iter: iter}
	}
	eng, err := NewEngine(n, edges, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(root)
	if err != nil {
		t.Fatalf("run failed on proc %d: %v", proc, err)
	}
	t.Logf("proc %d: recovery %+v wire %+v dead %v", proc, res.Recovery, g.WireStats(), g.DeadProcs())
	if out := os.Getenv(distOutEnv); out != "" {
		var sb strings.Builder
		fmt.Fprintf(&sb, "epochs=%d lost=%d resume=%d\n",
			res.Recovery.Epochs, res.Recovery.RanksLost, res.Recovery.LastResumeIter)
		for _, p := range res.Parent {
			fmt.Fprintf(&sb, "%d\n", p)
		}
		if err := os.WriteFile(out, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDistRealSIGKILLRecovery is the acceptance run for the socket backend's
// fail-stop story: two real OS processes split a 2x2 BFS over unix sockets
// with a shared checkpoint directory; process 1 SIGKILLs itself mid-iteration
// (no flush, no goodbye). The survivor's heartbeat detector must declare the
// peer dead, shrink the world onto itself, replay from the shared checkpoint
// truth, and finish with a parent tree bit-identical to a fault-free
// in-process run on the same seed.
func TestDistRealSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes and waits out the failure detector")
	}
	cfg := rmat.Config{Scale: 10, Seed: 11}
	n, edges := cfg.NumVertices(), rmat.Generate(cfg)
	base := Options{Mesh: topology.Mesh{Rows: 2, Cols: 2}, Thresholds: DefaultThresholds(10)}
	ref, err := NewEngine(n, edges, base)
	if err != nil {
		t.Fatal(err)
	}
	root := firstConnectedRootOf(ref)
	refRes, err := ref.Run(root)
	if err != nil {
		t.Fatal(err)
	}
	if refRes.Iterations < 4 {
		t.Fatalf("reference converged in %d iterations; a kill at iteration 2 would not land mid-run", refRes.Iterations)
	}

	dir := t.TempDir()
	addrs := fmt.Sprintf("unix:%s/p0.sock,unix:%s/p1.sock", dir, dir)
	ckpt := t.TempDir()
	out := dir + "/parent.out"

	spawn := func(proc int, extra ...string) *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run=^TestDistHelperProcess$", "-test.v")
		cmd.Env = append(os.Environ(),
			distHelperEnv+"=1",
			fmt.Sprintf("%s=%d", distProcEnv, proc),
			distAddrsEnv+"="+addrs,
			distCkptEnv+"="+ckpt,
			fmt.Sprintf("%s=%d", distRootEnv, root),
		)
		cmd.Env = append(cmd.Env, extra...)
		return cmd
	}
	survivor := spawn(0, distOutEnv+"="+out)
	victim := spawn(1, distKillEnv+"=2")
	var survivorOut, victimOut strings.Builder
	survivor.Stdout, survivor.Stderr = &survivorOut, &survivorOut
	victim.Stdout, victim.Stderr = &victimOut, &victimOut
	if err := survivor.Start(); err != nil {
		t.Fatal(err)
	}
	if err := victim.Start(); err != nil {
		_ = survivor.Process.Kill()
		t.Fatal(err)
	}
	watchdog := time.AfterFunc(3*time.Minute, func() {
		_ = survivor.Process.Kill()
		_ = victim.Process.Kill()
	})
	defer watchdog.Stop()

	verr := victim.Wait()
	ee, ok := verr.(*exec.ExitError)
	if !ok {
		t.Errorf("victim exited cleanly (%v); wanted death by SIGKILL", verr)
	} else if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signal() != syscall.SIGKILL {
		t.Errorf("victim died of %v, want SIGKILL\n%s", ws.Signal(), victimOut.String())
	}
	if err := survivor.Wait(); err != nil {
		t.Fatalf("survivor failed: %v\n%s", err, survivorOut.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("survivor wrote no result: %v\n%s", err, survivorOut.String())
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != int(n)+1 {
		t.Fatalf("result has %d lines, want %d", len(lines), n+1)
	}
	var epochs, lost, resume int64
	if _, err := fmt.Sscanf(lines[0], "epochs=%d lost=%d resume=%d", &epochs, &lost, &resume); err != nil {
		t.Fatalf("bad stats line %q: %v", lines[0], err)
	}
	// Exactly one epoch is the expected path; a CPU-starved box can fire the
	// failure detector spuriously and cost an extra epoch, which recovery must
	// absorb — so the hard assertions are "a rebuild happened" and "both of
	// the dead process's ranks were declared", with the bit-identical parent
	// check below carrying the correctness burden.
	if epochs < 1 || lost < 2 {
		t.Errorf("recovery stats epochs=%d lost=%d, want >=1 epoch covering both of the dead process's ranks\nsurvivor output:\n%s\nvictim output:\n%s",
			epochs, lost, survivorOut.String(), victimOut.String())
	}
	for i, line := range lines[1:] {
		p, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			t.Fatalf("bad parent line %d: %v", i, err)
		}
		if p != refRes.Parent[i] {
			t.Fatalf("parent[%d] = %d after SIGKILL recovery, want %d (fault-free in-process)", i, p, refRes.Parent[i])
		}
	}
	t.Logf("survivor recovered: epochs=%d lost=%d resume@%d", epochs, lost, resume)
}
