package core
