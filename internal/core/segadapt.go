package core

import (
	"math/bits"
	"time"

	"repro/internal/trace"
)

// Adaptive EH2EH segmenting (the measured replacement for the static
// Options.Segmented switch): whether the CG-aware segmented pull beats the
// flat pull depends on the frontier size — with many active hubs the
// segmented scan's cache locality wins, with few the flat scan's early exit
// does — and the crossover moves with scale and degree thresholds. Instead
// of hardcoding it, each rank buckets its measured EH2EH pull durations by
// log2(active hubs) and runs whichever variant measures faster for the
// current bucket, re-measuring the losing variant periodically so a
// drifting crossover is re-found. Neither pull variant performs
// collectives, so ranks are free to choose different arms without breaking
// collective lockstep, and a retried step may re-measure without changing
// the collective schedule.

const (
	segArmFlat = 0
	segArmSeg  = 1
	// segBuckets covers log2(active hubs) for any int32-indexed hub set.
	segBuckets = 32
	// segExploreEvery forces a measurement of the losing arm once per this
	// many pulls in a bucket.
	segExploreEvery = 16
	// segEWMA is the smoothing factor folding a new duration sample into a
	// bucket's running average.
	segEWMA = 0.25
)

type segBucket struct {
	ns    [2]float64 // EWMA of kernel nanoseconds per arm; valid when n > 0
	n     [2]int64   // observations per arm
	trial int64      // pulls routed through this bucket, drives exploration
}

// segAdapter is one rank's learned flat-vs-segmented state. It lives on the
// Engine and persists across runs, so later traversals start from the
// crossover the earlier ones measured.
type segAdapter struct {
	buckets [segBuckets]segBucket
}

func segBucketOf(activeHubs int64) int {
	if activeHubs < 1 {
		activeHubs = 1
	}
	return bits.Len64(uint64(activeHubs)) - 1
}

// choose picks the arm for the next pull at this frontier size: unexplored
// arms first (alternating), then the measured winner, with the loser
// re-measured every segExploreEvery pulls.
func (a *segAdapter) choose(activeHubs int64) (arm int, explore bool) {
	b := &a.buckets[segBucketOf(activeHubs)]
	b.trial++
	switch {
	case b.n[segArmFlat] == 0 && b.n[segArmSeg] == 0:
		return int(b.trial % 2), true
	case b.n[segArmFlat] == 0:
		return segArmFlat, true
	case b.n[segArmSeg] == 0:
		return segArmSeg, true
	}
	winner := segArmFlat
	if b.ns[segArmSeg] < b.ns[segArmFlat] {
		winner = segArmSeg
	}
	if b.trial%segExploreEvery == 0 {
		return 1 - winner, true
	}
	return winner, false
}

// observe folds a measured kernel duration into the chosen arm's average.
func (a *segAdapter) observe(activeHubs int64, arm int, ns int64) {
	b := &a.buckets[segBucketOf(activeHubs)]
	if b.n[arm] == 0 {
		b.ns[arm] = float64(ns)
	} else {
		b.ns[arm] += segEWMA * (float64(ns) - b.ns[arm])
	}
	b.n[arm]++
}

// measured returns the bucket's current averages in nanoseconds (0 =
// unexplored arm).
func (a *segAdapter) measured(activeHubs int64) (flatNS, segNS int64) {
	b := &a.buckets[segBucketOf(activeHubs)]
	return int64(b.ns[segArmFlat]), int64(b.ns[segArmSeg])
}

// crossover reports the measured threshold: the smallest frontier size
// (bucket lower bound, in active hubs) at which the segmented pull wins
// among buckets with both arms explored, or -1 while none does.
func (a *segAdapter) crossover() int64 {
	for i := range a.buckets {
		b := &a.buckets[i]
		if b.n[segArmFlat] > 0 && b.n[segArmSeg] > 0 && b.ns[segArmSeg] < b.ns[segArmFlat] {
			return int64(1) << uint(i)
		}
	}
	return -1
}

// ehPullAdaptive is the EH2EH pull under Options.SegmentAdaptive: ask the
// rank's adapter for the arm, run it, feed the measured duration back, and
// record the whole decision as a span so the choice and the averages it
// derived from are auditable in the Chrome trace.
func (st *rankState) ehPullAdaptive() (int64, error) {
	active := int64(st.hubFrontier.Count())
	a := st.e.segAdapt[st.r.ID]
	arm, explore := a.choose(active)
	var s0 int64
	if st.tr != nil {
		s0 = st.tr.Now()
	}
	t0 := time.Now()
	var edges int64
	var err error
	if arm == segArmSeg {
		edges, err = st.ehPullSegmented()
	} else {
		edges, err = st.ehPull()
	}
	ns := time.Since(t0).Nanoseconds()
	a.observe(active, arm, ns)
	if st.tr != nil {
		flatNS, segNS := a.measured(active)
		var ex int64
		if explore {
			ex = 1
		}
		st.tr.Emit(trace.Span{Kind: trace.KindDecision, Epoch: st.r.Epoch(),
			Iter: st.curIter, Step: 0, Name: "segment_choice",
			Start: s0, Dur: st.tr.Now() - s0,
			Args: map[string]int64{
				"active_hubs":    active,
				"bucket":         int64(segBucketOf(active)),
				"arm":            int64(arm),
				"explore":        ex,
				"kernel_ns":      ns,
				"flat_ns":        flatNS,
				"seg_ns":         segNS,
				"crossover_hubs": a.crossover(),
			}})
	}
	return edges, err
}
