package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rmat"
	"repro/internal/topology"
	"repro/internal/validate"
)

// Pathological graph shapes stress the engine differently from R-MAT:
// stars concentrate all edges on one hub, cliques make every vertex heavy,
// bipartite graphs maximize frontier flapping, and multigraphs exercise
// duplicate-edge tolerance.

func verifyAll(t *testing.T, name string, n int64, edges []rmat.Edge, roots []int64) {
	t.Helper()
	g := graph.FromEdges(n, edges, graph.BuildOptions{Symmetrize: true, DropSelfLoops: true})
	for _, mode := range []DirectionMode{ModeSubIteration, ModePushOnly, ModePullOnly} {
		for _, th := range []partition.Thresholds{
			{E: 4, H: 2},             // almost everything is a hub
			{E: 1 << 30, H: 1 << 29}, // nothing is a hub
			{E: 64, H: 8},
		} {
			opt := Options{Mesh: topology.Mesh{Rows: 2, Cols: 2}, Thresholds: th, Direction: mode}
			eng, err := NewEngine(n, edges, opt)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for _, root := range roots {
				res, err := eng.Run(root)
				if err != nil {
					t.Fatalf("%s mode=%d th=%+v root=%d: %v", name, mode, th, root, err)
				}
				if _, err := validate.BFS(n, edges, root, res.Parent); err != nil {
					t.Fatalf("%s mode=%d th=%+v root=%d: %v", name, mode, th, root, err)
				}
				refLvl, _ := graph.Levels(g.SequentialBFS(root), root)
				gotLvl, err := graph.Levels(res.Parent, root)
				if err != nil {
					t.Fatalf("%s root=%d: %v", name, root, err)
				}
				for v := int64(0); v < n; v++ {
					if refLvl[v] != gotLvl[v] {
						t.Fatalf("%s mode=%d th=%+v root=%d: level[%d]=%d want %d",
							name, mode, th, root, v, gotLvl[v], refLvl[v])
					}
				}
			}
		}
	}
}

func TestStarGraph(t *testing.T) {
	// One center connected to everyone: the center is an extreme E vertex.
	const n = 512
	var edges []rmat.Edge
	for v := int64(1); v < n; v++ {
		edges = append(edges, rmat.Edge{U: 0, V: v})
	}
	verifyAll(t, "star", n, edges, []int64{0, 1, 511})
}

func TestDoubleStar(t *testing.T) {
	// Two hubs sharing leaves: exercises E-E edges plus E2L from both.
	const n = 512
	var edges []rmat.Edge
	edges = append(edges, rmat.Edge{U: 0, V: 1})
	for v := int64(2); v < n; v++ {
		edges = append(edges, rmat.Edge{U: 0, V: v}, rmat.Edge{U: 1, V: v})
	}
	verifyAll(t, "double-star", n, edges, []int64{0, 2})
}

func TestCliquePlusTail(t *testing.T) {
	// A 32-clique (all heavy) with a path hanging off it (all light).
	const n = 128
	var edges []rmat.Edge
	for i := int64(0); i < 32; i++ {
		for j := i + 1; j < 32; j++ {
			edges = append(edges, rmat.Edge{U: i, V: j})
		}
	}
	for v := int64(32); v < 64; v++ {
		edges = append(edges, rmat.Edge{U: v - 1, V: v})
	}
	verifyAll(t, "clique+tail", n, edges, []int64{0, 63, 40})
}

func TestBipartiteFlapping(t *testing.T) {
	// Complete bipartite K_{8,100}: frontier alternates sides every level.
	const n = 256
	var edges []rmat.Edge
	for a := int64(0); a < 8; a++ {
		for b := int64(8); b < 108; b++ {
			edges = append(edges, rmat.Edge{U: a, V: b})
		}
	}
	verifyAll(t, "bipartite", n, edges, []int64{0, 8, 107})
}

func TestHeavyMultigraph(t *testing.T) {
	// Every edge repeated 5x plus self loops: kernels must stay idempotent.
	const n = 128
	rng := rand.New(rand.NewSource(9))
	var edges []rmat.Edge
	for i := 0; i < 200; i++ {
		u, v := rng.Int63n(n), rng.Int63n(n)
		for rep := 0; rep < 5; rep++ {
			edges = append(edges, rmat.Edge{U: u, V: v})
		}
	}
	for v := int64(0); v < 20; v++ {
		edges = append(edges, rmat.Edge{U: v, V: v})
	}
	verifyAll(t, "multigraph", n, edges, []int64{0, 64})
}

func TestLongPath(t *testing.T) {
	// Diameter equal to vertex count: many iterations, tiny frontiers.
	const n = 100
	var edges []rmat.Edge
	for v := int64(0); v < n-1; v++ {
		edges = append(edges, rmat.Edge{U: v, V: v + 1})
	}
	verifyAll(t, "path", n, edges, []int64{0, 50, 99})
}

func TestRandomGraphsProperty(t *testing.T) {
	// Randomized integration sweep: small Erdős–Rényi-ish multigraphs,
	// random roots, random thresholds, all modes, checked against the
	// sequential oracle.
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 25; trial++ {
		n := int64(64 + rng.Intn(512))
		m := 1 + rng.Intn(int(4*n))
		edges := make([]rmat.Edge, m)
		for i := range edges {
			edges[i] = rmat.Edge{U: rng.Int63n(n), V: rng.Int63n(n)}
		}
		th := partition.Thresholds{H: int64(1 + rng.Intn(16))}
		th.E = th.H + int64(rng.Intn(64))
		mode := DirectionMode(rng.Intn(2)) // sub-iteration or whole-iteration
		mesh := []topology.Mesh{{Rows: 1, Cols: 1}, {Rows: 2, Cols: 2}, {Rows: 1, Cols: 4}, {Rows: 4, Cols: 2}}[rng.Intn(4)]
		opt := Options{Mesh: mesh, Thresholds: th, Direction: mode, Segmented: rng.Intn(2) == 0}
		eng, err := NewEngine(n, edges, opt)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		g := graph.FromEdges(n, edges, graph.BuildOptions{Symmetrize: true, DropSelfLoops: true})
		root := rng.Int63n(n)
		res, err := eng.Run(root)
		if err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, opt, err)
		}
		if _, err := validate.BFS(n, edges, root, res.Parent); err != nil {
			t.Fatalf("trial %d (%+v root %d): %v", trial, opt, root, err)
		}
		refLvl, _ := graph.Levels(g.SequentialBFS(root), root)
		gotLvl, err := graph.Levels(res.Parent, root)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for v := int64(0); v < n; v++ {
			if refLvl[v] != gotLvl[v] {
				t.Fatalf("trial %d (%+v root %d): level[%d]=%d want %d",
					trial, opt, root, v, gotLvl[v], refLvl[v])
			}
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	eng, err := NewEngine(64, nil, Options{Ranks: 4, Thresholds: partition.Thresholds{E: 4, H: 2}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	for v, p := range res.Parent {
		want := int64(-1)
		if v == 5 {
			want = 5
		}
		if p != want {
			t.Fatalf("parent[%d] = %d, want %d", v, p, want)
		}
	}
}

func TestManyRootsOneEngine(t *testing.T) {
	// Engine reuse across runs must not leak state between traversals.
	cfg := rmat.Config{Scale: 9, Seed: 55}
	edges := rmat.Generate(cfg)
	n := cfg.NumVertices()
	eng, err := NewEngine(n, edges, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromEdges(n, edges, graph.BuildOptions{Symmetrize: true, DropSelfLoops: true})
	for root := int64(0); root < 20; root++ {
		res, err := eng.Run(root)
		if err != nil {
			t.Fatal(err)
		}
		refLvl, _ := graph.Levels(g.SequentialBFS(root), root)
		gotLvl, err := graph.Levels(res.Parent, root)
		if err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
		for v := int64(0); v < n; v++ {
			if refLvl[v] != gotLvl[v] {
				t.Fatalf("root %d: state leak at vertex %d", root, v)
			}
		}
	}
}

func TestWideMeshesAtScale(t *testing.T) {
	// Extreme mesh aspect ratios with more ranks than some rows/cols of data.
	cfg := rmat.Config{Scale: 8, Seed: 56}
	edges := rmat.Generate(cfg)
	n := cfg.NumVertices()
	for _, mesh := range []topology.Mesh{{Rows: 1, Cols: 16}, {Rows: 16, Cols: 1}, {Rows: 8, Cols: 2}} {
		t.Run(fmt.Sprintf("%dx%d", mesh.Rows, mesh.Cols), func(t *testing.T) {
			opt := Options{Mesh: mesh, Thresholds: partition.Thresholds{E: 128, H: 16}}
			eng, err := NewEngine(n, edges, opt)
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run(3)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := validate.BFS(n, edges, 3, res.Parent); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLargeScaleIntegration(t *testing.T) {
	// A bigger end-to-end sweep, skipped under -short: SCALE 18 over 16
	// ranks with segmenting and hierarchical forwarding on, multiple
	// validated roots.
	if testing.Short() {
		t.Skip("large integration test skipped with -short")
	}
	cfg := rmat.Config{Scale: 18, Seed: 99}
	edges := rmat.Generate(cfg)
	n := cfg.NumVertices()
	eng, err := NewEngine(n, edges, Options{Ranks: 16, Segmented: true, Hierarchical: true})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for root := int64(0); root < n && checked < 4; root++ {
		if eng.Part.Degrees[root] == 0 {
			continue
		}
		res, err := eng.Run(root)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := validate.BFS(n, edges, root, res.Parent); err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
		checked++
	}
	if checked != 4 {
		t.Fatalf("only %d roots checked", checked)
	}
}
