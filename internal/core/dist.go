package core

import "repro/internal/comm"

// Distributed result assembly. On the socket backend each process hosts only
// a subset of ranks, so after a successful run the per-rank writers
// (writeParents, writeResult) have filled only the local ranks' owned
// segments of the global result arrays. One extra control-plane gather pass
// per array ships every rank's owned contiguous block —
// [rank*PerRank, min((rank+1)*PerRank, N)) in partition.Layout terms, which
// by construction covers every write that rank's writer makes (owned L
// vertices plus the hub originals it owns) — to every process. The gather
// rides comm.ControlGatherSlices, so it is exempt from fault injection and
// traffic accounting: assembly is bookkeeping after the traversal, not part
// of the measured schedule.

// ownedSeg returns rank r's owned segment of a length-N global array.
func ownedSeg[T any](e *Engine, r int, arr []T) []T {
	lay := e.Part.Layout
	lo := int64(r) * lay.PerRank
	if lo >= lay.N {
		return nil
	}
	return arr[lo : lo+int64(lay.LocalCount(r))]
}

// gatherOwned merges arr across the processes of a distributed world: every
// rank contributes its owned segment, and on the process's lead rank the
// remote ranks' segments are copied back into arr. Local segments are
// already in place (their writers filled them before the gather), remote
// writes land in disjoint owned ranges, and only the lead rank writes, so
// the pass is race-free. Call from inside a World.Run body on every rank.
func gatherOwned[T any](e *Engine, r *comm.Rank, lead bool, arr []T) {
	all := comm.ControlGatherSlices(r.World, ownedSeg(e, r.ID, arr))
	if !lead {
		return
	}
	lay := e.Part.Layout
	for j, seg := range all {
		if len(seg) == 0 || e.World.IsLocal(j) {
			continue
		}
		copy(arr[int64(j)*lay.PerRank:], seg)
	}
}

// distAssemble runs one gather pass over a successful run's result arrays
// when the world is distributed; fill applies the per-rank gathers. It is a
// no-op on the in-process backend, where the writers already saw the whole
// array.
func (e *Engine) distAssemble(fill func(r *comm.Rank, lead bool)) {
	if !e.World.Distributed() {
		return
	}
	locals := e.World.LocalRanks()
	if len(locals) == 0 {
		// Every rank this process hosted was re-homed elsewhere by recovery;
		// with no world membership left there is no channel to gather on, so
		// this process's result arrays keep only their fill values.
		return
	}
	e.World.Run(func(r *comm.Rank) {
		fill(r, r.ID == locals[0])
	})
}
