package core

import (
	"repro/internal/comm"
	"repro/internal/perfmodel"
	"repro/internal/stats"
	"repro/internal/topology"
)

// ModeledSeconds prices one run's *measured* per-rank work and traffic on
// the engine's machine model: the bridge between laptop-scale runs and the
// paper's hardware. Compute time charges each rank's scanned edges at the
// calibrated per-edge cost (L2L at its slower rate, Section 6.1.2); link
// time charges the rank's recorded intra-/inter-supernode bytes at
// NIC/oversubscribed bandwidth; iteration latency adds the barrier floor.
// The slowest rank bounds the run (BSP semantics).
func (e *Engine) ModeledSeconds(res *Result, cal perfmodel.Calibration) float64 {
	mach := e.Opt.Machine
	worst := 0.0
	for _, rec := range res.PerRank {
		compute := 0.0
		for p := stats.Phase(0); p < stats.NumPhases; p++ {
			perEdge := cal.SecondsPerEdge
			if p == stats.PhaseL2L {
				perEdge = cal.SecondsPerEdgeL2L
			}
			compute += float64(rec.EdgesTouched[p]) * perEdge
		}
		v := rec.CommBreakdown()
		var intra, inter int64
		for k := 0; k < len(v.IntraBytes); k++ {
			intra += v.IntraBytes[k]
			inter += v.InterBytes[k]
		}
		link := mach.Time(topology.Traffic{
			IntraBytesPerNode: float64(intra),
			InterBytesPerNode: float64(inter),
		})
		if t := compute + link; t > worst {
			worst = t
		}
	}
	latency := float64(res.Iterations) * 6 * cal.BarrierSeconds
	return worst + latency
}

// ModeledGTEPS converts a run to projected GTEPS on the modeled machine.
func (e *Engine) ModeledGTEPS(res *Result, cal perfmodel.Calibration) float64 {
	sec := e.ModeledSeconds(res, cal)
	if sec <= 0 {
		return 0
	}
	return float64(res.TraversedEdges) / sec / 1e9
}

// commTotal is a small helper for tests.
func commTotal(v comm.VolumeStats) int64 {
	var t int64
	for k := 0; k < len(v.IntraBytes); k++ {
		t += v.IntraBytes[k] + v.InterBytes[k]
	}
	return t
}
