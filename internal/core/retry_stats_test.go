package core

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/validate"
)

// reliable is a fault transport that never fires, so the engine runs the
// full resilience machinery (snapshots, votes, envelopes) without any retry —
// the apples-to-apples baseline for the double-count comparison.
type reliable struct{}

func (reliable) Intercept(comm.Call) comm.FaultAction { return comm.FaultAction{} }

// TestRetryDoesNotDoubleCountStats is the regression test for the stats
// double-count on step-granular retry: a retried step re-enters runStep
// mid-iteration and re-observes its kernels, and before the iterSnapshot
// learned to roll the recorder back, the failed attempt's volumes and edge
// touches stayed in the aggregates. A run that retried must report exactly
// the volumes and edges of an identical run that never failed.
func TestRetryDoesNotDoubleCountStats(t *testing.T) {
	n, edges := rmatEdges(t, 10, 7)
	build := func(tr comm.Transport) *Engine {
		t.Helper()
		eng, err := NewEngine(n, edges, Options{
			Mesh:       topology.Mesh{Rows: 2, Cols: 2},
			Thresholds: partition.Thresholds{E: 512, H: 64},
			Transport:  tr,
			MaxRetries: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	ref := build(reliable{})
	root := firstConnectedRootOf(ref)
	want, err := ref.Run(root)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		fault *failOnce
	}{
		// Step 0 of iteration 2: the retry re-enters at the iteration's
		// first step and re-runs every kernel, sync and the epilogue.
		{"mid-iteration step retry", &failOnce{rank: 0, iter: 2, tag: 0}},
		// The delayed parent reduction after convergence (it runs with the
		// converging iteration still current): its retry loop re-runs
		// reduceParents, re-observing PhaseReduce.
		{"parent reduction retry", &failOnce{rank: 0, iter: int64(want.Iterations - 1), tag: TagReduce}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := build(tc.fault)
			got, err := eng.Run(root)
			if err != nil {
				t.Fatal(err)
			}
			if !tc.fault.fired.Load() {
				t.Fatal("fault never fired; the retry path is not exercised")
			}
			if got.Retries == 0 {
				t.Fatal("no retry was taken; the regression is not exercised")
			}
			if _, err := validate.BFS(n, edges, root, got.Parent); err != nil {
				t.Fatalf("validation after retry: %v", err)
			}
			for p := stats.Phase(0); p < stats.NumPhases; p++ {
				if g, w := got.Recorder.EdgesTouched[p], want.Recorder.EdgesTouched[p]; g != w {
					t.Errorf("EdgesTouched[%v] = %d after retry, want %d (fault-free)", p, g, w)
				}
				if g, w := got.Recorder.Volumes[p], want.Recorder.Volumes[p]; g != w {
					t.Errorf("Volumes[%v] = %+v after retry, want %+v (fault-free)", p, g, w)
				}
			}
		})
	}
}
