package core

import (
	"math"
	"time"

	"repro/internal/bitmap"
	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/partition"
	"repro/internal/sssp"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ssspState is delta-bucketed single-source shortest path on the engine's
// fast path, under the deterministic Graph 500 weights (sssp.WeightOf). The
// dirty sets track vertices whose tentative distance improved since they last
// relaxed; each iteration relaxes the dirty vertices whose distance falls
// inside the current bucket ((bucket+1)*delta), shipping (distance, parent)
// relaxations through the six components. Hub distances are delegated:
// replicated per rank and min-merged column-then-row after each hub-relaxing
// step, with a deterministic tie-break (equal distance -> larger parent) so
// every replica folds to the identical value. When a whole iteration improves
// nothing, the bucket advances to the smallest bucket holding a dirty vertex;
// the run converges when nothing improved and nothing is dirty.
//
// On the sparse tail each relaxation ships as two adjacent update records
// (distance bits, then parent) with the same destination/tag/offset; the
// receiver re-zips pairs in order, so the dense and sparse arms apply the
// identical relaxation sequence.
type ssspState struct {
	driver

	root  int64
	seed  uint64
	delta float64

	k    int
	numE int64

	hubDist, hubBaseD []float64
	hubParent         []int64
	lDist, lBaseD     []float64
	lParent           []int64

	hubDirty, lDirty *bitmap.Bitmap // improved since last relaxed
	relaxHub, relaxL *bitmap.Bitmap // this iteration's in-bucket relax set

	bucket  int64
	activeL int64 // global dirty-L count (sparse/skip proxy)

	relaxations int64

	pendImproved, pendAL, pendNext int64

	dpBuf          []hubDP // gather buffer for the dist+parent hub sync
	hubPack, lPack []int64 // checkpoint packing: [Float64bits(dist)..., parent...]

	snaps [numSteps]ssspSnapshot
}

// hubDP pairs a hub's tentative distance and parent for the delegation sync.
type hubDP struct {
	D float64
	P int64
}

// ssspSnapshot rolls back a retried step: distance/parent updates are not
// monotone across a failed partial merge, the L dirty set grows during
// kernels, and the relaxation counter re-observes re-executed applies.
type ssspSnapshot struct {
	hubDist, lDist     []float64
	hubParent, lParent []int64
	hubDirty, lDirty   []uint64
	relaxations        int64
}

func snapFloat64(dst *[]float64, src []float64) {
	if cap(*dst) < len(src) {
		*dst = make([]float64, len(src))
	}
	*dst = (*dst)[:len(src)]
	copy(*dst, src)
}

func newSSSPState(e *Engine, r *comm.Rank, root int64, seed uint64, delta float64) *ssspState {
	per := int(e.Part.Layout.PerRank)
	k := e.Part.Hubs.K()
	return &ssspState{
		driver:    newWorkloadDriver(e, r),
		root:      root,
		seed:      seed,
		delta:     delta,
		k:         k,
		numE:      int64(e.Part.Hubs.NumE),
		hubDist:   make([]float64, k),
		hubBaseD:  make([]float64, k),
		hubParent: make([]int64, k),
		lDist:     make([]float64, per),
		lBaseD:    make([]float64, per),
		lParent:   make([]int64, per),
		hubDirty:  bitmap.New(k),
		lDirty:    bitmap.New(per),
		relaxHub:  bitmap.New(k),
		relaxL:    bitmap.New(per),
		dpBuf:     make([]hubDP, k),
		hubPack:   make([]int64, 2*k),
		lPack:     make([]int64, 2*per),
	}
}

func (st *ssspState) drv() *driver { return &st.driver }

// bootstrap seeds infinite distances everywhere and the root at zero in
// bucket zero; the root's placement is replicated (hub) or owner-local (L).
func (st *ssspState) bootstrap() error {
	for h := 0; h < st.k; h++ {
		st.hubDist[h] = math.Inf(1)
		st.hubParent[h] = -1
	}
	for li := range st.lDist {
		st.lDist[li] = math.Inf(1)
		st.lParent[li] = -1
	}
	layout := st.e.Part.Layout
	hubs := st.e.Part.Hubs
	var al int64
	if h, ok := hubs.HubOf(st.root); ok {
		st.hubDist[h] = 0
		st.hubParent[h] = st.root
		st.hubDirty.Set(int(h))
	} else if layout.Owner(st.root) == st.r.ID {
		li := layout.LocalIdx(st.root)
		st.lDist[li] = 0
		st.lParent[li] = st.root
		st.lDirty.Set(int(li))
		al = 1
	}
	st.activeL = comm.ControlSumInt64(st.r.World, al)
	st.bucket = 0
	return nil
}

// ckpt packs (distance, parent) pairs into the writer's int64 arrays; the
// relax sets are rebuilt by beginIter, so their bitmap slots carry no load.
// The bucket index rides the VisitL scalar.
func (st *ssspState) ckpt() ckptSlices {
	for h := 0; h < st.k; h++ {
		st.hubPack[h] = int64(math.Float64bits(st.hubDist[h]))
		st.hubPack[st.k+h] = st.hubParent[h]
	}
	per := len(st.lDist)
	for li := 0; li < per; li++ {
		st.lPack[li] = int64(math.Float64bits(st.lDist[li]))
		st.lPack[per+li] = st.lParent[li]
	}
	return ckptSlices{
		hubF: st.hubDirty.Words(), hubV: st.relaxHub.Words(),
		lF: st.lDirty.Words(), lV: st.relaxL.Words(),
		pHub: st.hubPack, pL: st.lPack,
		activeL: st.activeL, visitL: st.bucket,
	}
}

func (st *ssspState) loadState(cs *checkpoint.State) {
	copy(st.hubDirty.Words(), cs.HubFrontier)
	copy(st.relaxHub.Words(), cs.HubVisited)
	copy(st.lDirty.Words(), cs.LFrontier)
	copy(st.relaxL.Words(), cs.LVisited)
	for h := 0; h < st.k; h++ {
		st.hubDist[h] = math.Float64frombits(uint64(cs.ParentHub[h]))
		st.hubParent[h] = cs.ParentHub[st.k+h]
	}
	per := len(st.lDist)
	for li := 0; li < per; li++ {
		st.lDist[li] = math.Float64frombits(uint64(cs.ParentL[li]))
		st.lParent[li] = cs.ParentL[per+li]
	}
	st.activeL = cs.ActiveL
	st.bucket = cs.VisitL
}

// beginIter carves this iteration's relax set out of the dirty sets (dirty
// vertices inside the current bucket) and latches base distances and the
// collective schedule. Hub decisions derive from replicated state and the L
// proxy is the globally agreed dirty count, so every rank latches identically.
func (st *ssspState) beginIter(it *IterTrace) {
	limit := float64(st.bucket+1) * st.delta
	st.relaxHub.Reset()
	for h := 0; h < st.k; h++ {
		if st.hubDirty.Test(h) && st.hubDist[h] < limit {
			st.relaxHub.Set(h)
		}
	}
	st.hubDirty.AndNot(st.relaxHub)
	st.relaxL.Reset()
	st.lDirty.ForEach(func(li int) {
		if st.lDist[li] < limit {
			st.relaxL.Set(li)
		}
	})
	st.lDirty.AndNot(st.relaxL)

	it.ActiveE = int64(st.relaxHub.CountRange(0, int(st.numE)))
	it.ActiveH = int64(st.relaxHub.CountRange(int(st.numE), st.k))
	it.ActiveL = st.activeL
	var act [partition.NumComponents]int64
	act[partition.CompEH2EH] = it.ActiveE + it.ActiveH
	act[partition.CompE2L] = it.ActiveE
	act[partition.CompH2L] = it.ActiveH
	act[partition.CompL2E] = it.ActiveL
	act[partition.CompL2H] = it.ActiveL
	act[partition.CompL2L] = it.ActiveL
	st.chooseSchedule(it, act, true, true)
	copy(st.hubBaseD, st.hubDist)
	copy(st.lBaseD, st.lDist)
	st.pendImproved, st.pendAL, st.pendNext = 0, 0, 0
}

func (st *ssspState) step(g int, it *IterTrace) error {
	var firstErr error
	run := func(c partition.Component, fn func() (int64, error)) {
		if err := st.runComp(c, it.Directions[c], fn); firstErr == nil {
			firstErr = err
		}
	}
	switch g {
	case 0:
		run(partition.CompEH2EH, st.ehRelax)
		if err := st.syncDists(); firstErr == nil {
			firstErr = err
		}
	case 1:
		st.pendRow = st.pendRow[:0]
		run(partition.CompE2L, st.e2lRelax)
		run(partition.CompH2L, st.h2lRelax)
		run(partition.CompL2E, st.l2eRelax)
		run(partition.CompL2H, st.l2hRelax)
		if err := st.syncDists(); firstErr == nil {
			firstErr = err
		}
	case 2:
		run(partition.CompL2L, st.l2lRelax)
	case 3:
		return st.epilogue()
	}
	return firstErr
}

// epilogue re-marks the hubs whose replicated distance improved (the diff
// against base is identical on every rank post-sync), counts improvements
// owner-side, and runs the agreement pair: the sum-allreduce carries the
// improvement count, byte feedback and global dirty-L count; the max-allreduce
// (negated) agrees on the smallest bucket holding a dirty vertex. Both
// collectives run unconditionally so the schedule matches on every rank.
func (st *ssspState) epilogue() error {
	st.r.SetTag(TagEpilogue)
	layout := st.e.Part.Layout
	hubs := st.e.Part.Hubs
	var improved int64
	for h := 0; h < st.k; h++ {
		if st.hubDist[h] < st.hubBaseD[h] {
			st.hubDirty.Set(h)
			if layout.Owner(hubs.Orig[h]) == st.r.ID {
				improved++
			}
		}
	}
	for li := 0; li < st.rg.LocalN; li++ {
		if st.lDist[li] < st.lBaseD[li] {
			improved++
		}
	}
	next := int64(math.MaxInt64)
	for h := 0; h < st.k; h++ {
		if st.hubDirty.Test(h) && !math.IsInf(st.hubDist[h], 1) {
			if b := int64(st.hubDist[h] / st.delta); b < next {
				next = b
			}
		}
	}
	st.lDirty.ForEach(func(li int) {
		if math.IsInf(st.lDist[li], 1) {
			return
		}
		if b := int64(st.lDist[li] / st.delta); b < next {
			next = b
		}
	})
	iterBytes := commBytes(st.rec) - st.iterBytesBase
	sums, err := comm.AllreduceSumInt64s(st.r.World,
		[]int64{improved, iterBytes, int64(st.lDirty.Count())})
	neg := []int64{-next}
	err2 := comm.AllreduceMaxInt64(st.r.World, neg)
	if err == nil {
		st.pendImproved = sums[0]
		st.lastIterBytes = sums[1]
		st.pendAL = sums[2]
	}
	if err2 == nil {
		st.pendNext = -neg[0]
	}
	if err != nil {
		return err
	}
	return err2
}

// endIter commits the agreed counts. A quiescent iteration (no improvement
// anywhere) either converges — nothing left dirty — or advances the bucket to
// the agreed next occupied one; remaining dirty vertices all sit past the
// current limit, so the bucket strictly advances.
func (st *ssspState) endIter(it *IterTrace) bool {
	st.activeL = st.pendAL
	if st.pendImproved == 0 {
		if st.pendNext == math.MaxInt64 {
			return true
		}
		st.bucket = st.pendNext
	}
	return false
}

func (st *ssspState) finalize() error { return nil }

func (st *ssspState) snapshot(g int) {
	s := &st.snaps[g]
	snapFloat64(&s.hubDist, st.hubDist)
	snapFloat64(&s.lDist, st.lDist)
	snapInt64(&s.hubParent, st.hubParent)
	snapInt64(&s.lParent, st.lParent)
	snapWords(&s.hubDirty, st.hubDirty)
	snapWords(&s.lDirty, st.lDirty)
	s.relaxations = st.relaxations
}

func (st *ssspState) restore(g int) {
	s := &st.snaps[g]
	copy(st.hubDist, s.hubDist)
	copy(st.lDist, s.lDist)
	copy(st.hubParent, s.hubParent)
	copy(st.lParent, s.lParent)
	copy(st.hubDirty.Words(), s.hubDirty)
	copy(st.lDirty.Words(), s.lDirty)
	st.relaxations = s.relaxations
}

func (st *ssspState) lowerHub(h int32, nd float64, parent int64) {
	if nd < st.hubDist[h] {
		st.hubDist[h] = nd
		st.hubParent[h] = parent
		st.relaxations++
	}
}

func (st *ssspState) lowerL(li int32, nd float64, parent int64) {
	if nd < st.lDist[li] {
		st.lDist[li] = nd
		st.lParent[li] = parent
		st.lDirty.Set(int(li))
		st.relaxations++
	}
}

// syncDists min-merges the replicated hub (distance, parent) pairs
// column-then-row with a deterministic fold (smaller distance wins; equal
// distance takes the larger parent), the SSSP analogue of the hub-bitmap
// sync. Both collectives always run.
func (st *ssspState) syncDists() error {
	d := &st.driver
	t0 := time.Now()
	var s0 int64
	if d.tr != nil {
		s0 = d.tr.Now()
	}
	base := d.r.Stats
	var err error
	if st.k > 0 {
		err = st.syncDistsOver(d.r.ColC)
		if e2 := st.syncDistsOver(d.r.RowC); err == nil {
			err = e2
		}
	}
	delta := d.r.Stats.Delta(&base)
	d.rec.Observe(stats.PhaseOther, stats.DirNone, time.Since(t0), delta, 0)
	if d.tr != nil {
		intra, inter := delta.Totals()
		sp := trace.Span{Kind: trace.KindSync, Epoch: d.r.Epoch(),
			Iter: d.curIter, Step: d.curStep, Attempt: d.curAttempt,
			Name: "dist_sync", Start: s0, Dur: d.tr.Now() - s0,
			IntraBytes: intra, InterBytes: inter}
		if err != nil {
			sp.Err = 1
		}
		d.tr.Emit(sp)
	}
	return err
}

func (st *ssspState) syncDistsOver(c *comm.Comm) error {
	for h := 0; h < st.k; h++ {
		st.dpBuf[h] = hubDP{D: st.hubDist[h], P: st.hubParent[h]}
	}
	parts, err := comm.Allgatherv(c, st.dpBuf)
	if err != nil {
		return err
	}
	for h := 0; h < st.k; h++ {
		best := parts[0][h]
		for _, p := range parts[1:] {
			dp := p[h]
			if dp.D < best.D || (dp.D == best.D && dp.P > best.P) {
				best = dp
			}
		}
		st.hubDist[h] = best.D
		st.hubParent[h] = best.P
	}
	return nil
}

// ehRelax: in-bucket source hubs relax destination hubs over this rank's 2D
// core-subgraph block (weights from original IDs); local, merged by the sync.
func (st *ssspState) ehRelax() (int64, error) {
	push := &st.rg.EHPush
	orig := st.e.Part.Hubs.Orig
	var edges int64
	for i, src := range push.IDs {
		if !st.relaxHub.Test(int(src)) {
			continue
		}
		du := st.hubBaseD[src]
		u := orig[src]
		for _, dst := range push.Adj[push.Ptr[i]:push.Ptr[i+1]] {
			edges++
			st.lowerHub(dst, du+sssp.WeightOf(u, orig[dst], st.seed), u)
		}
	}
	return edges, nil
}

// e2lRelax: in-bucket E hubs relax owned L vertices locally.
func (st *ssspState) e2lRelax() (int64, error) {
	csr := &st.rg.EToL
	orig := st.e.Part.Hubs.Orig
	layout := st.e.Part.Layout
	var edges int64
	for i, hub := range csr.IDs {
		if !st.relaxHub.Test(int(hub)) {
			continue
		}
		du := st.hubBaseD[hub]
		u := orig[hub]
		for _, li := range csr.Adj[csr.Ptr[i]:csr.Ptr[i+1]] {
			edges++
			v := layout.GlobalOf(st.r.ID, li)
			st.lowerL(li, du+sssp.WeightOf(u, v, st.seed), u)
		}
	}
	return edges, nil
}

// h2lRelax: in-bucket H hubs in this rank's column block relax their L
// neighbors across the row. Dense messages carry (LIdx, dist, parent); the
// sparse arm ships each relaxation as an adjacent record pair.
func (st *ssspState) h2lRelax() (int64, error) {
	csr := &st.rg.HToL
	orig := st.e.Part.Hubs.Orig
	layout := st.e.Part.Layout
	mesh := st.e.Opt.Mesh
	var edges int64
	if st.sparse[partition.CompH2L] {
		var ups []comm.SparseUpdate
		for i, hub := range csr.IDs {
			if !st.relaxHub.Test(int(hub)) {
				continue
			}
			du := st.hubBaseD[hub]
			u := orig[hub]
			for _, rem := range csr.Adj[csr.Ptr[i]:csr.Ptr[i+1]] {
				edges++
				v := layout.GlobalOf(mesh.RankAt(st.r.Row, int(rem.Col)), rem.LIdx)
				nd := du + sssp.WeightOf(u, v, st.seed)
				ups = append(ups,
					comm.SparseUpdate{Dst: int32(rem.Col), Tag: int32(partition.CompH2L),
						Off: int64(rem.LIdx), Val: int64(math.Float64bits(nd))},
					comm.SparseUpdate{Dst: int32(rem.Col), Tag: int32(partition.CompH2L),
						Off: int64(rem.LIdx), Val: u})
			}
		}
		if st.batchRow {
			st.pendRow = append(st.pendRow, ups...)
			return edges, nil
		}
		out, err := comm.AllgatherSparse(st.r.RowC, ups)
		if err != nil {
			return edges, err
		}
		st.applyLPairs(out)
		return edges, nil
	}
	send := make([][]distLMsg, mesh.Cols)
	for i, hub := range csr.IDs {
		if !st.relaxHub.Test(int(hub)) {
			continue
		}
		du := st.hubBaseD[hub]
		u := orig[hub]
		for _, rem := range csr.Adj[csr.Ptr[i]:csr.Ptr[i+1]] {
			edges++
			v := layout.GlobalOf(mesh.RankAt(st.r.Row, int(rem.Col)), rem.LIdx)
			send[rem.Col] = append(send[rem.Col],
				distLMsg{LIdx: rem.LIdx, Dist: du + sssp.WeightOf(u, v, st.seed), Parent: u})
		}
	}
	recv, err := comm.Alltoallv(st.r.RowC, send)
	if err != nil {
		return edges, err
	}
	for _, part := range recv {
		for _, m := range part {
			st.lowerL(m.LIdx, m.Dist, m.Parent)
		}
	}
	return edges, nil
}

// distLMsg relaxes an L vertex at a known rank by local index.
type distLMsg struct {
	LIdx   int32
	Dist   float64
	Parent int64
}

// distHubMsg relaxes a hub delegate.
type distHubMsg struct {
	Hub    int32
	Dist   float64
	Parent int64
}

// distWorldMsg relaxes an L vertex by original ID.
type distWorldMsg struct {
	Dst    int64
	Dist   float64
	Parent int64
}

// applyLPairs re-zips received (distance, parent) record pairs and applies
// them to owned L vertices in per-source order.
func (st *ssspState) applyLPairs(out [][]comm.SparseUpdate) {
	for _, us := range out {
		for i := 0; i+1 < len(us); i += 2 {
			st.lowerL(int32(us[i].Off), math.Float64frombits(uint64(us[i].Val)), us[i+1].Val)
		}
	}
}

// applyHubPairs is the hub-delegate analogue (Off carries the hub ID).
func (st *ssspState) applyHubPairs(out [][]comm.SparseUpdate) {
	for _, us := range out {
		for i := 0; i+1 < len(us); i += 2 {
			st.lowerHub(int32(us[i].Off), math.Float64frombits(uint64(us[i].Val)), us[i+1].Val)
		}
	}
}

// l2eRelax: in-bucket owned L vertices relax E delegates locally.
func (st *ssspState) l2eRelax() (int64, error) {
	csr := &st.rg.LToE
	orig := st.e.Part.Hubs.Orig
	layout := st.e.Part.Layout
	var edges int64
	st.relaxL.ForEach(func(li int) {
		du := st.lBaseD[li]
		u := layout.GlobalOf(st.r.ID, int32(li))
		for _, hub := range csr.Adj[csr.Ptr[li]:csr.Ptr[li+1]] {
			edges++
			st.lowerHub(hub, du+sssp.WeightOf(u, orig[hub], st.seed), u)
		}
	})
	return edges, nil
}

// l2hRelax: in-bucket owned L vertices message the row delegate of each H
// neighbor the relaxation would actually improve (the live check against the
// replicated distance saves the message and is identical on both exchange
// arms — nothing between L2E and here touches hub distances).
func (st *ssspState) l2hRelax() (int64, error) {
	csr := &st.rg.LToH
	orig := st.e.Part.Hubs.Orig
	layout := st.e.Part.Layout
	hubs := st.e.Part.Hubs
	mesh := st.e.Opt.Mesh
	var edges int64
	if st.sparse[partition.CompL2H] {
		var ups []comm.SparseUpdate
		st.relaxL.ForEach(func(li int) {
			du := st.lBaseD[li]
			u := layout.GlobalOf(st.r.ID, int32(li))
			for _, hub := range csr.Adj[csr.Ptr[li]:csr.Ptr[li+1]] {
				edges++
				nd := du + sssp.WeightOf(u, orig[hub], st.seed)
				if nd >= st.hubDist[hub] {
					continue
				}
				col := hubs.ColBlockOf(hub, mesh)
				ups = append(ups,
					comm.SparseUpdate{Dst: int32(col), Tag: int32(partition.CompL2H),
						Off: int64(hub), Val: int64(math.Float64bits(nd))},
					comm.SparseUpdate{Dst: int32(col), Tag: int32(partition.CompL2H),
						Off: int64(hub), Val: u})
			}
		})
		if st.batchRow {
			st.pendRow = append(st.pendRow, ups...)
			return edges, st.flushRowDists()
		}
		out, err := comm.AllgatherSparse(st.r.RowC, ups)
		if err != nil {
			return edges, err
		}
		st.applyHubPairs(out)
		return edges, nil
	}
	send := make([][]distHubMsg, mesh.Cols)
	st.relaxL.ForEach(func(li int) {
		du := st.lBaseD[li]
		u := layout.GlobalOf(st.r.ID, int32(li))
		for _, hub := range csr.Adj[csr.Ptr[li]:csr.Ptr[li+1]] {
			edges++
			nd := du + sssp.WeightOf(u, orig[hub], st.seed)
			if nd >= st.hubDist[hub] {
				continue
			}
			col := hubs.ColBlockOf(hub, mesh)
			send[col] = append(send[col], distHubMsg{Hub: hub, Dist: nd, Parent: u})
		}
	})
	recv, err := comm.Alltoallv(st.r.RowC, send)
	if err != nil {
		return edges, err
	}
	for _, part := range recv {
		for _, m := range part {
			st.lowerHub(m.Hub, m.Dist, m.Parent)
		}
	}
	return edges, nil
}

// flushRowDists runs the batched row exchange carrying both the H2L and L2H
// relaxation pairs and applies them in the dense schedule's kernel order (all
// H2L, then all L2H). Pairs keep the tag of their kernel, so the tag split
// preserves pair adjacency. The buffer clears before the exchange even on
// error: a retry re-enters at the top of step 1 and regenerates every update.
func (st *ssspState) flushRowDists() error {
	ups := st.pendRow
	st.pendRow = st.pendRow[:0]
	out, err := comm.AllgatherSparse(st.r.RowC, ups)
	if err != nil {
		return err
	}
	lParts := make([][]comm.SparseUpdate, len(out))
	hubParts := make([][]comm.SparseUpdate, len(out))
	for j, us := range out {
		for _, u := range us {
			if u.Tag == int32(partition.CompH2L) {
				lParts[j] = append(lParts[j], u)
			} else {
				hubParts[j] = append(hubParts[j], u)
			}
		}
	}
	st.applyLPairs(lParts)
	st.applyHubPairs(hubParts)
	return nil
}

// l2lRelax: in-bucket owned L vertices relax their L neighbors at the
// owners; one world alltoallv, or paired sparse records on tail iterations.
func (st *ssspState) l2lRelax() (int64, error) {
	csr := &st.rg.L2L
	layout := st.e.Part.Layout
	var edges int64
	if st.sparse[partition.CompL2L] {
		var ups []comm.SparseUpdate
		st.relaxL.ForEach(func(li int) {
			du := st.lBaseD[li]
			u := layout.GlobalOf(st.r.ID, int32(li))
			for _, dst := range csr.Adj[csr.Ptr[li]:csr.Ptr[li+1]] {
				edges++
				nd := du + sssp.WeightOf(u, dst, st.seed)
				owner := int32(layout.Owner(dst))
				ups = append(ups,
					comm.SparseUpdate{Dst: owner, Tag: int32(partition.CompL2L),
						Off: dst, Val: int64(math.Float64bits(nd))},
					comm.SparseUpdate{Dst: owner, Tag: int32(partition.CompL2L),
						Off: dst, Val: u})
			}
		})
		out, err := comm.AllgatherSparse(st.r.World, ups)
		if err != nil {
			return edges, err
		}
		for _, us := range out {
			for i := 0; i+1 < len(us); i += 2 {
				st.lowerL(layout.LocalIdx(us[i].Off),
					math.Float64frombits(uint64(us[i].Val)), us[i+1].Val)
			}
		}
		return edges, nil
	}
	send := make([][]distWorldMsg, layout.P)
	st.relaxL.ForEach(func(li int) {
		du := st.lBaseD[li]
		u := layout.GlobalOf(st.r.ID, int32(li))
		for _, dst := range csr.Adj[csr.Ptr[li]:csr.Ptr[li+1]] {
			edges++
			send[layout.Owner(dst)] = append(send[layout.Owner(dst)],
				distWorldMsg{Dst: dst, Dist: du + sssp.WeightOf(u, dst, st.seed), Parent: u})
		}
	})
	recv, err := comm.Alltoallv(st.r.World, send)
	if err != nil {
		return edges, err
	}
	for _, part := range recv {
		for _, m := range part {
			st.lowerL(layout.LocalIdx(m.Dst), m.Dist, m.Parent)
		}
	}
	return edges, nil
}

// writeResult assembles this rank's share of the global distance and parent
// arrays: owned non-hub L vertices, then the hub vertices whose original IDs
// it owns (hub state is identical on all ranks after the per-iteration syncs).
func (st *ssspState) writeResult(dist []float64, parent []int64) {
	layout := st.e.Part.Layout
	hubs := st.e.Part.Hubs
	for li := 0; li < st.rg.LocalN; li++ {
		v := layout.GlobalOf(st.r.ID, int32(li))
		if _, isHub := hubs.HubOf(v); !isHub {
			dist[v] = st.lDist[li]
			parent[v] = st.lParent[li]
		}
	}
	for h, orig := range hubs.Orig {
		if layout.Owner(orig) == st.r.ID {
			dist[orig] = st.hubDist[h]
			parent[orig] = st.hubParent[h]
		}
	}
}
