// Package core implements the paper's distributed BFS engine on top of the
// 1.5D partitioning: per-component push/pull kernels, sub-iteration direction
// optimization (Section 4.2), CG-aware segmenting of the EH2EH pull (Section
// 4.3), edge-aware vertex-cut load balancing of the EH2EH push (Section 5),
// and delayed reduction of the delegated parent array (Section 5). Ranks are
// comm.World goroutines; hub (E and H) state is delegated — replicated and
// synchronized with column+row collectives — while L state lives only at its
// owner.
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
)

// DirectionMode selects how traversal directions are chosen.
type DirectionMode int

// Direction modes.
const (
	// ModeSubIteration picks a direction per component per iteration — the
	// paper's contribution.
	ModeSubIteration DirectionMode = iota
	// ModeWholeIteration picks one direction for the whole iteration —
	// vanilla direction optimization, the Figure 15 baseline.
	ModeWholeIteration
	// ModePushOnly forces top-down everywhere (classic BFS).
	ModePushOnly
	// ModePullOnly forces bottom-up everywhere (debug/verification aid).
	ModePullOnly
)

// SparseMode selects whether tail iterations ship destination-addressed
// sparse update triples (comm.AllgatherSparse) instead of dense
// per-destination alltoallv buffers for the remote push components.
type SparseMode int

// Sparse-tail modes.
const (
	// SparseAuto switches per component per iteration: a remote push
	// component goes sparse when its global active-source count is at or
	// below SparseCutoff and the previous iteration's globally observed
	// data-plane bytes fit under SparseMaxBytes. The default.
	SparseAuto SparseMode = iota
	// SparseOff forces the dense exchanges everywhere (the pre-sparse
	// schedule, and the differential corpus's reference arm).
	SparseOff
	// SparseAlways forces the sparse exchange for every eligible remote push
	// component regardless of frontier size (stress/verification aid).
	SparseAlways
)

// Options configures an Engine.
type Options struct {
	Mesh    topology.Mesh    // process mesh; zero value = squarest mesh for P
	Ranks   int              // number of ranks; required if Mesh is zero
	Machine topology.Machine // traffic model; zero value = NewSunway(P)

	Thresholds partition.Thresholds // degree thresholds; zero = DefaultThresholds

	Direction DirectionMode
	// Segmented enables CG-aware segmenting of the EH2EH pull kernel.
	Segmented bool
	// Segments is the segment count (the chip has 6 CGs). 0 means 6.
	Segments int
	// SegmentAdaptive chooses between the flat and the segmented EH2EH pull
	// per iteration from measured kernel durations instead of statically:
	// each rank keeps per-frontier-size-bucket duration averages of both
	// variants and runs whichever measures faster, re-exploring the loser
	// periodically so a drifting crossover is re-found. Every choice is
	// emitted as a "segment_choice" decision span, auditable in the Chrome
	// trace. Implies building the segmented adjacency (Segments controls the
	// count); overrides Segmented. Off by default: the two pull variants may
	// discover different (equally valid) BFS parents, so timing-driven
	// switching makes repeated runs nondeterministic.
	SegmentAdaptive bool
	// RankWorkers is intra-rank kernel parallelism; the EH2EH push uses
	// edge-aware vertex-cut chunking across these workers. 0 means 1.
	RankWorkers int
	// Hierarchical routes L2L messages through the intersection rank of the
	// source column and destination row (two alltoallvs on sub-communicators)
	// instead of one world alltoallv, as the paper's forwarding does.
	Hierarchical bool
	// PullThreshold is the active-source fraction above which node-local
	// components (EH2EH, E2L, L2E) switch to pull. 0 means 0.05.
	PullThreshold float64
	// PullRatio scales the push/pull comparison for remote components (H2L,
	// L2H, L2L): pull wins when unvisitedDstFrac < activeSrcFrac*PullRatio.
	// 0 means 16, tuned like Beamer's bottom-up switch factor: scanning an
	// unvisited destination is far cheaper than a per-edge message, and
	// early exit truncates most scans.
	PullRatio float64
	// SparseTail selects the sparse-update tail path for the remote push
	// components (H2L, L2H, and non-hierarchical L2L): tiny tail frontiers
	// ship (dst, tag, offset, value) triples over one allgather instead of a
	// dense per-destination alltoallv, and when both row-exchange components
	// (H2L and L2H) go sparse in the same iteration their payloads batch into
	// a single exchange. Hierarchical L2L always stays dense: its two-stage
	// forwarding is the point of that mode and its apply order differs from a
	// flat exchange. The zero value is SparseAuto (adaptive, on).
	SparseTail SparseMode
	// SparseCutoff is the largest global active-source count at which
	// SparseAuto picks the sparse path for a component. 0 means 64 per rank.
	SparseCutoff int64
	// SparseMaxBytes is the largest previous-iteration global data-plane
	// byte count at which SparseAuto keeps choosing sparse (hysteresis
	// against a collapsing-then-exploding frontier). 0 means 32KiB per rank.
	SparseMaxBytes int64
	// ImmediateParentReduction reduces the delegated parent array after
	// every iteration instead of once after the run — the traditional scheme
	// the paper's delayed reduction (Section 5) replaces. Exists for the
	// ablation benchmark; the measured reduce-scatter volume difference is
	// the technique's claimed saving.
	ImmediateParentReduction bool
	// BuildWorkers caps partitioning parallelism. 0 means GOMAXPROCS.
	BuildWorkers int
	// MaxIterations aborts runs that fail to converge. 0 means 2*64
	// (a small-world graph's diameter is far below this). Exhausting it
	// returns an error satisfying errors.Is(err, ErrNoConvergence).
	MaxIterations int

	// Transport injects faults into the rank world's collectives (see
	// internal/faultinject). nil means a perfectly reliable transport and
	// zero resilience overhead: no snapshots, no votes, no checksums.
	Transport comm.Transport
	// Dist attaches the world to a cross-process socket group (see
	// comm.DistConfig): this process then hosts only the ranks
	// DistConfig.ProcOf maps to it, collectives between processes ride the
	// wire transport, and result assembly gathers the remote ranks' owned
	// segments over the control plane. Every process of the group must run
	// the same engine calls with the same options (SPMD). When set,
	// CheckpointDir must name a directory shared by all processes — it is
	// the recovery protocol's shared truth. nil keeps the single-process
	// goroutine backend.
	Dist *comm.DistConfig
	// CollectiveDeadline fails any collective whose slowest contribution was
	// delayed past it (comm.ErrDeadlineExceeded). 0 disables the watchdog.
	CollectiveDeadline time.Duration
	// MaxRetries bounds consecutive re-executions of one failed iteration
	// before the run aborts with ErrNoConvergence. 0 means 4; negative means
	// no retries (fail on the first collective error).
	MaxRetries int
	// RetryBackoff is the base backoff slept before re-executing a failed
	// iteration, doubling per consecutive retry. 0 means 200µs.
	RetryBackoff time.Duration

	// CheckpointDir enables the durable two-tier checkpoint store (see
	// internal/checkpoint): the immutable partitioned graph is written there
	// once, and every run writes per-iteration state deltas into a run
	// scope, which is what fail-stop recovery resumes from. Empty disables
	// checkpointing — a killed rank then forces a full restart of the
	// traversal under the new world.
	CheckpointDir string
	// CheckpointEvery is the delta-tier cadence in iterations (1 = every
	// iteration). 0 means 1.
	CheckpointEvery int
	// Recovery selects how the world is rebuilt after a fail-stop:
	// RecoverShrink (default) re-homes dead slots onto surviving nodes,
	// RecoverRestore spawns replacements on spare nodes.
	Recovery RecoveryMode
	// KeepCheckpoints retains a run's delta scope after success instead of
	// pruning it (the graph tier is always retained). Needed to resume a
	// later engine instance with ResumeFrom.
	KeepCheckpoints bool
	// Trace, when non-nil, records the run's span timeline: one span per
	// kernel/sync/reduce execution and per collective on every rank, plus
	// direction decisions, checkpoint-writer commits and recovery events.
	// nil disables tracing; the hot path then pays one nil check per hook.
	Trace *trace.Tracer
	// ResumeFrom names an existing run scope under CheckpointDir to resume
	// the first Run call from — the cross-process restart path. The scope's
	// latest complete iteration is loaded; if the scope cannot seed a resume
	// (no valid bootstrap segments) the run restarts from the root. On a
	// resumed run Result.Trace covers only the re-executed iterations (the
	// absolute iteration axis starts past the checkpoint), so Iterations
	// undercounts the traversal's logical depth by LastResumeIter+1.
	ResumeFrom string
	// Drain, when non-nil, is polled once per iteration vote; when it starts
	// returning true (a supervisor forwarding SIGTERM), every rank finishes
	// the current iteration, commits a must-write checkpoint, and the run
	// returns an error wrapping ErrDrained with its scope retained — the
	// resumable graceful-shutdown path. The decision is voted like a fault,
	// so one process's drain request stops the whole world consistently.
	Drain func() bool
}

// RecoveryMode selects the world-rebuild strategy after a fail-stop.
type RecoveryMode int

// Recovery modes.
const (
	// RecoverShrink re-homes each dead rank slot onto a surviving node: no
	// spare hardware needed, the host node runs oversubscribed and re-owns
	// the dead rank's vertex range from checkpoint.
	RecoverShrink RecoveryMode = iota
	// RecoverRestore spawns a replacement rank on a fresh spare node that
	// rejoins at the current epoch, reloading the graph tier and the dead
	// rank's delta chain from checkpoint.
	RecoverRestore
)

// String names the mode.
func (m RecoveryMode) String() string {
	return m.rebuild().String()
}

func (m RecoveryMode) rebuild() comm.RebuildMode {
	if m == RecoverRestore {
		return comm.RebuildRestore
	}
	return comm.RebuildShrink
}

// DefaultThresholds scales the paper's SCALE-35 tuning (E=2048, H=128 per
// Figure 12's best cell) down with graph size: thresholds sit between the
// comb peaks of the R-MAT degree distribution, which shift with scale.
func DefaultThresholds(scale int) partition.Thresholds {
	e := int64(1) << uint(scale/2+2)
	h := e / 16
	if h < 2 {
		h = 2
	}
	if e <= h {
		e = h + 1
	}
	return partition.Thresholds{E: e, H: h}
}

func (o Options) withDefaults() (Options, error) {
	if o.Mesh.Rows == 0 && o.Mesh.Cols == 0 {
		if o.Ranks <= 0 {
			return o, fmt.Errorf("core: Options needs Mesh or Ranks")
		}
		o.Mesh = topology.SquarestMesh(o.Ranks)
	}
	o.Ranks = o.Mesh.Size()
	if o.Machine.Nodes == 0 {
		o.Machine = topology.NewSunway(o.Ranks)
	}
	if o.Segments <= 0 {
		o.Segments = 6
	}
	if o.RankWorkers <= 0 {
		o.RankWorkers = 1
	}
	if o.PullThreshold == 0 {
		o.PullThreshold = 0.05
	}
	if o.PullRatio == 0 {
		o.PullRatio = 16.0
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 128
	}
	if o.SparseCutoff <= 0 {
		o.SparseCutoff = 64 * int64(o.Ranks)
	}
	if o.SparseMaxBytes <= 0 {
		o.SparseMaxBytes = 32 * 1024 * int64(o.Ranks)
	}
	switch {
	case o.MaxRetries == 0:
		o.MaxRetries = 4
	case o.MaxRetries < 0:
		o.MaxRetries = 0
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 200 * time.Microsecond
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 1
	}
	return o, nil
}

// ErrNoConvergence marks a BFS run that ended without draining its frontier:
// either MaxIterations elapsed with vertices still being discovered, or a
// failing iteration exhausted MaxRetries (in which case the returned error
// also wraps the comm sentinel that kept firing, e.g. comm.ErrRankStalled).
var ErrNoConvergence = errors.New("core: BFS did not converge")

// ErrDrained marks a run stopped by a graceful drain request (Options.Drain):
// the workload state was checkpointed at the stop iteration and the run scope
// retained, so a later engine resumes it via ResumeFrom.
var ErrDrained = errors.New("core: run drained")

// errRemoteFatal is the verdict a process adopts when the epoch outcome
// exchange reports a fatal error on a peer that its own ranks never saw.
var errRemoteFatal = errors.New("core: remote process reported a fatal error")

// Epoch outcome codes carried by comm.World.ExchangeOutcome; the merge keeps
// the maximum, so any process reporting drained/fatal overrides ok everywhere.
const (
	outcomeOK      uint8 = 0
	outcomeFatal   uint8 = 1
	outcomeDrained uint8 = 2
)

// errRemoteRank stands in for the collective error when the local rank's
// iteration succeeded but the global vote said another rank's failed.
var errRemoteRank = errors.New("core: collective error on a remote rank")

// Engine runs BFS over a partitioned graph.
type Engine struct {
	Part  *partition.Partitioned
	World *comm.World
	Opt   Options

	segPull  [][]partition.SparseCSR // [rank][segment], built when Segmented or SegmentAdaptive
	segAdapt []*segAdapter           // [rank] measured flat-vs-segmented state, when SegmentAdaptive

	tr         *trace.Stream // engine-level span stream; nil when tracing is off
	runSeq     int           // run-scope counter for checkpoint naming
	resumeFrom string        // pending Opt.ResumeFrom, consumed by the next Run

	// PartitionSeconds and ConstructSeconds split NewEngine's wall time into
	// the partitioning phase (with the stage breakdown in Part.Stats) and the
	// rank-world/adjacency construction that follows — the setup cost a
	// benchmark report surfaces next to traversal throughput. Both are zero
	// for engines built via NewEngineFromPartition with pre-partitioned input.
	PartitionSeconds float64
	ConstructSeconds float64
}

// NewEngine partitions the graph (n vertices, undirected edge list) and sets
// up the rank world.
func NewEngine(n int64, edges []Edge, opt Options) (*Engine, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	th := opt.Thresholds
	if th == (partition.Thresholds{}) {
		s := 0
		for int64(1)<<uint(s) < n {
			s++
		}
		th = DefaultThresholds(s)
		opt.Thresholds = th
	}
	t0 := time.Now()
	part, err := partition.Build(n, edges, opt.Mesh, th, opt.BuildWorkers)
	if err != nil {
		return nil, err
	}
	t1 := time.Now()
	e, err := NewEngineFromPartition(part, opt)
	if err != nil {
		return nil, err
	}
	e.PartitionSeconds = t1.Sub(t0).Seconds()
	e.ConstructSeconds = time.Since(t1).Seconds()
	return e, nil
}

// Edge aliases the generator's edge type so callers of the core package do
// not need to import rmat directly.
type Edge = partition.Edge

// NewEngineFromPartition wraps an existing partitioning.
func NewEngineFromPartition(part *partition.Partitioned, opt Options) (*Engine, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	if part.Layout.Mesh != opt.Mesh {
		return nil, fmt.Errorf("core: partition mesh %v differs from options mesh %v", part.Layout.Mesh, opt.Mesh)
	}
	world, err := comm.NewWorldOpts(opt.Ranks, opt.Mesh, opt.Machine, comm.WorldOptions{
		Transport: opt.Transport,
		Deadline:  opt.CollectiveDeadline,
		Trace:     opt.Trace,
		Dist:      opt.Dist,
	})
	if err != nil {
		return nil, err
	}
	e := &Engine{Part: part, World: world, Opt: opt, resumeFrom: opt.ResumeFrom}
	if opt.Trace != nil {
		e.tr = opt.Trace.NewStream(-1)
	}
	if opt.Segmented || opt.SegmentAdaptive {
		e.segPull = make([][]partition.SparseCSR, opt.Ranks)
		for r, rg := range part.Ranks {
			e.segPull[r] = rg.SegmentedPull(opt.Segments, part.Hubs.K())
		}
	}
	if opt.SegmentAdaptive {
		e.segAdapt = make([]*segAdapter, opt.Ranks)
		for r := range e.segAdapt {
			e.segAdapt[r] = &segAdapter{}
		}
	}
	return e, nil
}

// SetResumeFrom arms the next Run call to execute under the named checkpoint
// scope, resuming its latest complete iteration when the scope holds one and
// bootstrapping fresh under that name otherwise. Callers that run a root list
// across process restarts (cmd/bfsrun) use it to give every root a
// deterministic scope name: a root interrupted by a world crash is resumed,
// a finished root (its scope pruned) is simply re-run under the same name.
func (e *Engine) SetResumeFrom(name string) { e.resumeFrom = name }

// Result is one BFS run's output.
type Result struct {
	Root       int64
	Parent     []int64 // parent per original vertex; -1 unreachable
	Iterations int
	Time       time.Duration
	// TraversedEdges counts input undirected edges with both endpoints in
	// the traversed component — the Graph 500 TEPS numerator.
	TraversedEdges int64
	// Recorder aggregates all ranks' breakdowns.
	Recorder *stats.Recorder
	// PerRank holds each rank's own breakdown.
	PerRank []*stats.Recorder
	// Trace records per-iteration frontier composition and chosen
	// directions (Figure 5 and the direction-optimization diagnostics).
	Trace []IterTrace
	// Faults aggregates all ranks' injected faults and observed collective
	// errors; zero when no fault transport was installed.
	Faults comm.FaultStats
	// Retries counts iteration re-executions across all ranks; RecoveryTime
	// is the wall time the slowest rank spent in failed attempts + backoff.
	Retries      int64
	RecoveryTime time.Duration
	// Recovery accounts fail-stop recovery: world epochs spent, ranks lost,
	// iterations replayed, checkpoint bytes written and restored.
	Recovery stats.RecoveryStats
	// CheckpointScope names the run's retained delta scope under
	// Options.CheckpointDir ("" when checkpointing is off or the scope was
	// pruned after success). Pass it to a later engine's ResumeFrom.
	CheckpointScope string
}

// IterTrace is one iteration's frontier composition and direction choices.
type IterTrace struct {
	ActiveE, ActiveH, ActiveL int64
	Directions                [partition.NumComponents]stats.Direction
	// Sparse marks the remote push components whose exchange shipped sparse
	// update triples (comm.AllgatherSparse) instead of dense buffers this
	// iteration; always false for components that pulled or skipped.
	Sparse [partition.NumComponents]bool
}

// GTEPS returns giga-traversed-edges-per-second for the run.
func (r *Result) GTEPS() float64 {
	if r.Time <= 0 {
		return 0
	}
	return float64(r.TraversedEdges) / r.Time.Seconds() / 1e9
}

// Collective schedule tags (comm.Call.Tag). Kernels are tagged with their
// component enum value (0..5); these name the remaining tagged points, so a
// fault transport can scope a kill to "during component c", "at the
// epilogue", or "during setup" instead of raw sequence numbers.
const (
	TagEpilogue = int(partition.NumComponents)     // frontier advance + active-L allreduce
	TagReduce   = int(partition.NumComponents) + 1 // delegated parent reduction
	TagSetup    = int(partition.NumComponents) + 2 // epoch-start setup barrier (Iter -1)
)

// deadWorldError aborts a rank's bfs when the control-plane vote agreed some
// ranks fail-stopped: not retryable inside the current world epoch, the
// engine must rebuild the world and resume from checkpoint.
type deadWorldError struct{ dead []int }

func (e *deadWorldError) Error() string {
	return fmt.Sprintf("core: ranks %v fail-stopped; world rebuild required", e.dead)
}

func (e *deadWorldError) Unwrap() error { return comm.ErrRankDead }

// deadRanks collects the union of agreed-dead ranks from an epoch's errors.
func deadRanks(errs []error) []int {
	seen := map[int]bool{}
	for _, err := range errs {
		var dw *deadWorldError
		if errors.As(err, &dw) {
			for _, d := range dw.dead {
				seen[d] = true
			}
		}
	}
	if len(seen) == 0 {
		return nil
	}
	dead := make([]int, 0, len(seen))
	for d := range seen {
		dead = append(dead, d)
	}
	sort.Ints(dead)
	return dead
}

// distLeader reports whether this process should perform once-per-world side
// effects (meta commits, scope pruning): the process hosting rank 0, which on
// the in-process backend is everyone's answer.
func (e *Engine) distLeader() bool {
	return !e.World.Distributed() || e.World.ProcOf(0) == e.World.Group().Proc()
}

// ensureGraphTier writes the graph tier once per (store, partitioning): every
// rank's partitioned graph first, the meta segment last as the commit marker,
// so a crash mid-write reads back as "no valid tier" and is rewritten. On a
// distributed world each process writes only its local ranks' graphs into the
// shared store, a fence makes them all durable, and the process hosting rank
// 0 commits the meta segment; a second fence keeps anyone from trusting the
// tier before the commit lands.
func (e *Engine) ensureGraphTier(store *checkpoint.Store) (segs, bytes int64, err error) {
	lay := e.Part.Layout
	meta := checkpoint.GraphMeta{
		N:        lay.N,
		Ranks:    e.Opt.Ranks,
		MeshRows: lay.Mesh.Rows,
		MeshCols: lay.Mesh.Cols,
		PerRank:  lay.PerRank,
		NumE:     e.Part.Hubs.NumE,
		NumH:     e.Part.Hubs.NumH,
		ThreshE:  e.Opt.Thresholds.E,
		ThreshH:  e.Opt.Thresholds.H,
	}
	if store.HasGraph(meta) {
		// Every process sees the same committed tier (the meta segment is
		// written strictly after all processes' HasGraph checks, behind a
		// fence), so taking this branch is an SPMD-consistent decision.
		return 0, 0, nil
	}
	for r, rg := range e.Part.Ranks {
		if !e.World.IsLocal(r) {
			continue
		}
		n, werr := store.WriteRankGraph(r, rg)
		if werr != nil {
			return segs, bytes, werr
		}
		segs++
		bytes += n
	}
	e.World.Fence()
	if e.distLeader() {
		n, werr := store.WriteGraphMeta(meta)
		if werr != nil {
			return segs, bytes, werr
		}
		segs++
		bytes += n
	}
	e.World.Fence()
	return segs, bytes, nil
}

// workloadFactory builds one rank's workload state for an epoch. The factory
// runs once per rank per world epoch — a rebuilt world re-creates every
// workload and replays it from checkpoint.
type workloadFactory func(e *Engine, r *comm.Rank) workload

// runEpoch executes one world epoch: every rank of the current world runs the
// shared driver loop over its workload, resuming from resumeIter when >= -1
// (replaced marks rank slots whose predecessor died last epoch). A fail-stop
// surfaces as *deadWorldError in errs on every rank.
func (e *Engine) runEpoch(mk workloadFactory, store *checkpoint.Store, scope *checkpoint.RunScope,
	resumeIter int64, replaced map[int]bool) ([]workload, [][]IterTrace, []error) {
	states := make([]workload, e.Opt.Ranks)
	traces := make([][]IterTrace, e.Opt.Ranks)
	errs := make([]error, e.Opt.Ranks)
	e.World.Run(func(r *comm.Rank) {
		wl := mk(e, r)
		d := wl.drv()
		d.store, d.scope = store, scope
		d.resumeIter = resumeIter
		d.replaced = replaced[r.ID]
		states[r.ID] = wl
		traces[r.ID], errs[r.ID] = d.runLoop(wl)
		d.rec.Faults = r.Faults
		d.rec.Retries = d.retries
		d.rec.Recovery = d.recovery
	})
	return states, traces, errs
}

// runCommon is the workload-agnostic outcome of Engine.execute: everything a
// public entry point (Run, RunWCC, RunKCore, RunSSSP) needs to assemble its
// result type.
type runCommon struct {
	states       []workload
	trace        []IterTrace
	time         time.Duration
	recorder     *stats.Recorder
	perRank      []*stats.Recorder
	faults       comm.FaultStats
	retries      int64
	recoveryTime time.Duration
	recovery     stats.RecoveryStats
	scopeName    string
	err          error
}

// execute is the shared run skeleton behind every workload entry point:
// checkpoint store/scope setup (scope named "run%03d-<suffix>"), the world
// epoch loop with fail-stop detection, world rebuild and checkpoint resume,
// trace stitching onto the absolute iteration axis, and the recovery/fault
// accounting fold. A returned error means the run never started (store
// setup failed); an error from the run itself lands in runCommon.err with
// the partial accounting intact.
func (e *Engine) execute(suffix string, spanArgs map[string]int64, mk workloadFactory) (*runCommon, error) {
	rc := &runCommon{recorder: &stats.Recorder{}}
	rc.recovery.LastResumeIter = -2

	var store *checkpoint.Store
	var scope *checkpoint.RunScope
	resumeIter := int64(-2) // -2 = fresh start (bootstrap the workload)
	if e.Opt.CheckpointDir != "" {
		var err error
		store, err = checkpoint.Open(e.Opt.CheckpointDir)
		if err != nil {
			return nil, err
		}
		segs, bytes, err := e.ensureGraphTier(store)
		if err != nil {
			return nil, err
		}
		rc.recovery.CheckpointSegments += segs
		rc.recovery.CheckpointBytes += bytes
		name, resuming := e.resumeFrom, e.resumeFrom != ""
		e.resumeFrom = ""
		if !resuming {
			name = fmt.Sprintf("run%03d-%s", e.runSeq, suffix)
			e.runSeq++
		}
		scope, err = store.Scope(name)
		if err != nil {
			return nil, err
		}
		if resuming {
			if it, ok := scope.LatestComplete(e.Opt.Ranks); ok {
				resumeIter = it
			}
		}
	}

	start := time.Now()
	var runT0 int64
	if e.tr != nil {
		runT0 = e.tr.Now()
		e.tr.Emit(trace.Span{Kind: trace.KindEvent, Iter: -1, Step: -1,
			Name: "run_start", Start: runT0, Args: spanArgs})
	}
	replaced := map[int]bool{}
	var full []IterTrace
	var states []workload
	var runErr error
	for {
		if resumeIter >= -1 {
			rc.recovery.LastResumeIter = resumeIter
		}
		var traces [][]IterTrace
		var errs []error
		states, traces, errs = e.runEpoch(mk, store, scope, resumeIter, replaced)
		var maxReplay time.Duration
		for _, wl := range states {
			if wl == nil { // remote rank on a distributed world
				continue
			}
			d := wl.drv()
			rc.recorder.Merge(d.rec)
			if d.recovery > rc.recoveryTime {
				rc.recoveryTime = d.recovery
			}
			if d.replayDur > maxReplay {
				maxReplay = d.replayDur
			}
		}
		rc.recovery.RecoveryTime += maxReplay

		// Stitch this epoch's trace onto the absolute iteration axis: the
		// epoch re-executed everything past the checkpoint it resumed from.
		startAbs := int(resumeIter) + 1
		if resumeIter == -2 {
			startAbs = 0
		}
		if startAbs < len(full) {
			full = full[:startAbs]
		}
		for _, tr := range traces { // first hosted rank's trace (identical on all)
			if tr != nil {
				full = append(full, tr...)
				break
			}
		}

		dead := deadRanks(errs)
		localErr := firstErr(errs)
		code := outcomeOK
		if len(dead) == 0 && localErr != nil {
			code = outcomeFatal
			if errors.Is(localErr, ErrDrained) {
				code = outcomeDrained
			}
		}
		if e.World.Distributed() {
			// Agree on this epoch's verdict across every process, spares
			// included: a spare hosts no ranks, so its local errs say nothing
			// — without the exchange it would spin into the next epoch while
			// survivors stop, or stop while survivors rebuild. The exchange
			// also propagates process-local fatal errors (and drain verdicts)
			// that the per-iteration vote cannot carry, so one process's
			// failure ends the run everywhere instead of hanging its peers.
			dead, code = e.World.ExchangeOutcome(dead, code)
			switch {
			case code == outcomeDrained && !errors.Is(localErr, ErrDrained):
				localErr = fmt.Errorf("core: drained by a remote process: %w", ErrDrained)
			case code == outcomeFatal && localErr == nil:
				localErr = fmt.Errorf("core: run failed on a remote process: %w", errRemoteFatal)
			}
		}
		if len(dead) == 0 || code != outcomeOK {
			// A drained or fatal verdict ends the run even when ranks died in
			// the same epoch: the process that raised it has already left the
			// epoch loop (its outcome frame revoked the epoch on every peer),
			// so rebuilding would wedge waiting for it. The code is agreed by
			// the exchange, so every process breaks here together.
			runErr = localErr
			break
		}

		// Fail-stop recovery: rebuild the world, pick the resume point.
		recStart := time.Now()
		var recT0 int64
		if e.tr != nil {
			recT0 = e.tr.Now()
		}
		rc.recovery.Epochs++
		rc.recovery.RanksLost += int64(len(dead))
		if rc.recovery.Epochs > int64(e.Opt.Ranks) {
			runErr = fmt.Errorf("core: %d world epochs exhausted: %w: %w",
				rc.recovery.Epochs, ErrNoConvergence, comm.ErrRankDead)
			break
		}
		nw, err := e.World.NextEpoch(dead, e.Opt.Recovery.rebuild())
		if err != nil {
			runErr = err
			break
		}
		e.World = nw
		replaced = map[int]bool{}
		for _, d := range dead {
			replaced[d] = true
		}
		resumeIter = -2
		// Every surviving process must have flushed and closed its checkpoint
		// writers before any process picks the resume point, or two processes
		// could disagree on the latest complete iteration and replay divergent
		// prefixes. Dead processes count as arrived at the fence.
		e.World.Fence()
		if scope != nil {
			if it, ok := scope.LatestComplete(e.Opt.Ranks); ok {
				resumeIter = it
			}
		}
		replayFrom := resumeIter + 1
		if resumeIter == -2 {
			replayFrom = 0
		}
		if completed := int64(len(full)); completed > replayFrom {
			rc.recovery.IterationsReplayed += completed - replayFrom
		}
		rc.recovery.RecoveryTime += time.Since(recStart)
		if e.tr != nil {
			e.tr.Emit(trace.Span{Kind: trace.KindRecovery,
				Epoch: int(rc.recovery.Epochs), Iter: resumeIter, Step: -1,
				Name: "world_rebuild", Start: recT0, Dur: e.tr.Now() - recT0,
				Args: map[string]int64{"ranks_lost": int64(len(dead))}})
		}
	}
	rc.time = time.Since(start)
	if e.tr != nil {
		sp := trace.Span{Kind: trace.KindEvent, Epoch: int(rc.recovery.Epochs),
			Iter: -1, Step: -1, Name: "run", Start: runT0, Dur: e.tr.Now() - runT0}
		if runErr != nil {
			sp.Err = 1
		}
		e.tr.Emit(sp)
	}

	rc.states = states
	rc.trace = full
	for _, wl := range states {
		if wl == nil {
			continue
		}
		rc.perRank = append(rc.perRank, wl.drv().rec)
	}
	rc.faults = rc.recorder.Faults
	rc.retries = rc.recorder.Retries
	// Fold the rank-side accounting (checkpoint writers, replay bytes) into
	// the engine-side recovery record; Add leaves LastResumeIter alone.
	rc.recovery.Add(&rc.recorder.FailStop)
	rc.recorder.FailStop = rc.recovery
	rc.err = runErr
	if runErr == nil {
		if scope != nil {
			if e.Opt.KeepCheckpoints {
				rc.scopeName = scope.Name()
			} else {
				// All processes' writers must be closed before the scope
				// disappears, and only one process prunes the shared store.
				e.World.Fence()
				if e.distLeader() {
					_ = scope.Remove()
				}
			}
		}
	} else if scope != nil {
		// A failed run keeps its scope: it is the restart path (ResumeFrom).
		rc.scopeName = scope.Name()
	}
	return rc, nil
}

// Run executes one BFS from root and assembles the global result. Under a
// fault transport the run may fail even after retries; the Result is still
// returned alongside the error so callers can inspect the fault and retry
// accounting of the doomed run.
//
// A fail-stop (a Kill fault) does not fail the run when CheckpointDir is set:
// the engine detects the agreed-dead ranks, rebuilds the world as a new epoch
// (Options.Recovery selects shrink vs restore), replays every rank from the
// latest complete checkpoint and continues, recording the cost in
// Result.Recovery. With checkpointing off, recovery degrades to a full
// restart of the traversal under the new world.
func (e *Engine) Run(root int64) (*Result, error) {
	n := e.Part.Layout.N
	if root < 0 || root >= n {
		return nil, fmt.Errorf("core: root %d out of [0,%d)", root, n)
	}
	rc, err := e.execute(fmt.Sprintf("root%d", root), map[string]int64{"root": root},
		func(e *Engine, r *comm.Rank) workload { return newRankState(e, r, root) })
	if err != nil {
		return nil, err
	}
	res := &Result{
		Root:            root,
		Parent:          make([]int64, n),
		Iterations:      len(rc.trace),
		Time:            rc.time,
		Recorder:        rc.recorder,
		PerRank:         rc.perRank,
		Trace:           rc.trace,
		Faults:          rc.faults,
		Retries:         rc.retries,
		RecoveryTime:    rc.recoveryTime,
		Recovery:        rc.recovery,
		CheckpointScope: rc.scopeName,
	}
	for i := range res.Parent {
		res.Parent[i] = -1
	}
	if rc.err == nil {
		for _, wl := range rc.states {
			if wl == nil {
				continue
			}
			wl.(*rankState).writeParents(res.Parent)
		}
		e.distAssemble(func(r *comm.Rank, lead bool) {
			gatherOwned(e, r, lead, res.Parent)
		})
		res.TraversedEdges = e.countTraversedEdges(res.Parent)
	}
	return res, rc.err
}

// countTraversedEdges sums degrees of reachable vertices / 2 (each undirected
// non-loop edge inside the component contributes its two endpoints' degree
// increments; edges cannot leave the component in a completed BFS).
func (e *Engine) countTraversedEdges(parent []int64) int64 {
	var sum int64
	for v, p := range parent {
		if p >= 0 {
			sum += e.Part.Degrees[v]
		}
	}
	return sum / 2
}
