package core

import (
	"repro/internal/bitmap"
	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/partition"
)

// wccState is connected components on the engine's fast path: min-label
// propagation over the six 1.5D components. Hub labels are delegated exactly
// like BFS hub state — replicated per rank and min-merged column-then-row
// after each hub-lowering step — while L labels live only at their owner.
//
// The per-iteration discipline: beginIter latches base copies of both label
// arrays; every kernel reads source labels from the base (so the batched row
// exchange can defer its applies without changing any kernel's input) and
// lowers live labels; the epilogue diffs live against base to build the next
// dirty sets and agree on the global change count. Min-folding is
// order-independent, so the dense and sparse exchange arms produce
// bit-identical label streams.
type wccState struct {
	driver

	k    int
	numE int64

	hubLabel, hubBase []int64
	lLabel, lBase     []int64

	hubDirty, lDirty *bitmap.Bitmap // lowered last iteration: this iteration's sources
	hubNext, lNext   *bitmap.Bitmap // staged: lowered this iteration

	activeL             int64 // global count of dirty L vertices
	pendChanged, pendAL int64 // epilogue's agreed counts, committed by endIter

	snaps [numSteps]wccSnapshot
}

// wccSnapshot is the state a retried step must roll back: label lowering is
// not monotone across a failed collective (a partially merged sync can leave
// garbage), so both live label arrays are captured alongside the staged dirty
// sets. The base arrays are latched once per iteration and never written by
// steps, so they need no capture.
type wccSnapshot struct {
	hubLabel, lLabel []int64
	hubNext, lNext   []uint64
}

func newWCCState(e *Engine, r *comm.Rank) *wccState {
	per := int(e.Part.Layout.PerRank)
	k := e.Part.Hubs.K()
	return &wccState{
		driver:   newWorkloadDriver(e, r),
		k:        k,
		numE:     int64(e.Part.Hubs.NumE),
		hubLabel: make([]int64, k),
		hubBase:  make([]int64, k),
		lLabel:   make([]int64, per),
		lBase:    make([]int64, per),
		hubDirty: bitmap.New(k),
		hubNext:  bitmap.New(k),
		lDirty:   bitmap.New(per),
		lNext:    bitmap.New(per),
	}
}

func (st *wccState) drv() *driver { return &st.driver }

// bootstrap seeds every vertex with its own original ID as label and marks
// everything dirty; the global dirty-L count rides the control plane.
func (st *wccState) bootstrap() error {
	layout := st.e.Part.Layout
	hubs := st.e.Part.Hubs
	for h := 0; h < st.k; h++ {
		st.hubLabel[h] = hubs.Orig[h]
		st.hubDirty.Set(h)
	}
	for li := range st.lLabel {
		st.lLabel[li] = layout.GlobalOf(st.r.ID, int32(li))
	}
	var al int64
	for li := 0; li < st.rg.LocalN; li++ {
		v := layout.GlobalOf(st.r.ID, int32(li))
		if _, isHub := hubs.HubOf(v); !isHub {
			st.lDirty.Set(li)
			al++
		}
	}
	st.activeL = comm.ControlSumInt64(st.r.World, al)
	return nil
}

func (st *wccState) ckpt() ckptSlices {
	return ckptSlices{
		hubF: st.hubDirty.Words(), hubV: st.hubNext.Words(),
		lF: st.lDirty.Words(), lV: st.lNext.Words(),
		pHub: st.hubLabel, pL: st.lLabel,
		activeL: st.activeL, visitL: 0,
	}
}

func (st *wccState) loadState(cs *checkpoint.State) {
	copy(st.hubDirty.Words(), cs.HubFrontier)
	copy(st.hubNext.Words(), cs.HubVisited)
	copy(st.lDirty.Words(), cs.LFrontier)
	copy(st.lNext.Words(), cs.LVisited)
	copy(st.hubLabel, cs.ParentHub)
	copy(st.lLabel, cs.ParentL)
	st.activeL = cs.ActiveL
}

// beginIter latches the iteration's base labels and collective schedule. The
// active counts derive from replicated hub dirty state plus the globally
// agreed L count, so every rank latches identically.
func (st *wccState) beginIter(it *IterTrace) {
	it.ActiveE = int64(st.hubDirty.CountRange(0, int(st.numE)))
	it.ActiveH = int64(st.hubDirty.CountRange(int(st.numE), st.k))
	it.ActiveL = st.activeL
	var act [partition.NumComponents]int64
	act[partition.CompEH2EH] = it.ActiveE + it.ActiveH
	act[partition.CompE2L] = it.ActiveE
	act[partition.CompH2L] = it.ActiveH
	act[partition.CompL2E] = it.ActiveL
	act[partition.CompL2H] = it.ActiveL
	act[partition.CompL2L] = it.ActiveL
	st.chooseSchedule(it, act, true, true)
	copy(st.hubBase, st.hubLabel)
	copy(st.lBase, st.lLabel)
	st.pendChanged, st.pendAL = 0, 0
}

func (st *wccState) step(g int, it *IterTrace) error {
	var firstErr error
	run := func(c partition.Component, fn func() (int64, error)) {
		if err := st.runComp(c, it.Directions[c], fn); firstErr == nil {
			firstErr = err
		}
	}
	switch g {
	case 0:
		run(partition.CompEH2EH, st.ehProp)
		if err := st.syncLabels(); firstErr == nil {
			firstErr = err
		}
	case 1:
		st.pendRow = st.pendRow[:0]
		run(partition.CompE2L, st.e2lProp)
		run(partition.CompH2L, st.h2lProp)
		run(partition.CompL2E, st.l2eProp)
		run(partition.CompL2H, st.l2hProp)
		if err := st.syncLabels(); firstErr == nil {
			firstErr = err
		}
	case 2:
		run(partition.CompL2L, st.l2lProp)
	case 3:
		return st.epilogue()
	}
	return firstErr
}

// epilogue diffs live labels against the iteration's base to stage the next
// dirty sets and agrees on the global change count. Hub lowers are counted by
// the owner of the hub's original vertex only (the diff is replicated); the
// allreduce triple also carries the byte feedback for the sparse tail and the
// next iteration's global dirty-L count.
func (st *wccState) epilogue() error {
	st.r.SetTag(TagEpilogue)
	layout := st.e.Part.Layout
	hubs := st.e.Part.Hubs
	var changed int64
	for h := 0; h < st.k; h++ {
		if st.hubLabel[h] < st.hubBase[h] {
			st.hubNext.Set(h)
			if layout.Owner(hubs.Orig[h]) == st.r.ID {
				changed++
			}
		}
	}
	lChanged := int64(st.lNext.Count())
	iterBytes := commBytes(st.rec) - st.iterBytesBase
	sums, err := comm.AllreduceSumInt64s(st.r.World,
		[]int64{changed + lChanged, iterBytes, lChanged})
	if err != nil {
		return err
	}
	st.pendChanged = sums[0]
	st.lastIterBytes = sums[1]
	st.pendAL = sums[2]
	return nil
}

// endIter swaps the staged dirty sets in; convergence is the zero-change
// round, which counts toward Iterations — the same semantics as the generic
// framework RunProgram.
func (st *wccState) endIter(it *IterTrace) bool {
	st.hubDirty.CopyFrom(st.hubNext)
	st.hubNext.Reset()
	st.lDirty.CopyFrom(st.lNext)
	st.lNext.Reset()
	st.activeL = st.pendAL
	return st.pendChanged == 0
}

// finalize is a no-op: labels are already globally consistent (hub labels by
// the per-iteration syncs, L labels owner-local).
func (st *wccState) finalize() error { return nil }

func (st *wccState) snapshot(g int) {
	s := &st.snaps[g]
	snapInt64(&s.hubLabel, st.hubLabel)
	snapInt64(&s.lLabel, st.lLabel)
	snapWords(&s.hubNext, st.hubNext)
	snapWords(&s.lNext, st.lNext)
}

func (st *wccState) restore(g int) {
	s := &st.snaps[g]
	copy(st.hubLabel, s.hubLabel)
	copy(st.lLabel, s.lLabel)
	copy(st.hubNext.Words(), s.hubNext)
	copy(st.lNext.Words(), s.lNext)
}

func (st *wccState) lowerHub(h int32, lbl int64) {
	if lbl < st.hubLabel[h] {
		st.hubLabel[h] = lbl
	}
}

func (st *wccState) lowerL(li int32, lbl int64) {
	if lbl < st.lLabel[li] {
		st.lLabel[li] = lbl
		st.lNext.Set(int(li))
	}
}

// syncLabels min-merges the replicated hub labels column-then-row, the
// label-carrying analogue of the BFS hub-bitmap sync.
func (st *wccState) syncLabels() error {
	return syncHubMinInt64(&st.driver, st.hubLabel, "label_sync")
}

// ehProp: dirty source hubs lower their destination hubs' replicated labels
// over this rank's 2D core-subgraph block; purely local, merged by the sync.
func (st *wccState) ehProp() (int64, error) {
	push := &st.rg.EHPush
	var edges int64
	for i, src := range push.IDs {
		if !st.hubDirty.Test(int(src)) {
			continue
		}
		lbl := st.hubBase[src]
		for _, dst := range push.Adj[push.Ptr[i]:push.Ptr[i+1]] {
			edges++
			st.lowerHub(dst, lbl)
		}
	}
	return edges, nil
}

// e2lProp: dirty E hubs lower owned L labels locally (E is delegated
// everywhere).
func (st *wccState) e2lProp() (int64, error) {
	csr := &st.rg.EToL
	var edges int64
	for i, hub := range csr.IDs {
		if !st.hubDirty.Test(int(hub)) {
			continue
		}
		lbl := st.hubBase[hub]
		for _, li := range csr.Adj[csr.Ptr[i]:csr.Ptr[i+1]] {
			edges++
			st.lowerL(li, lbl)
		}
	}
	return edges, nil
}

// h2lProp: dirty H hubs in this rank's column block message their L
// neighbors' owners along the row; dense alltoallv or sparse triples (lMsg
// reuses Parent as the label payload).
func (st *wccState) h2lProp() (int64, error) {
	csr := &st.rg.HToL
	var edges int64
	if st.sparse[partition.CompH2L] {
		var ups []comm.SparseUpdate
		for i, hub := range csr.IDs {
			if !st.hubDirty.Test(int(hub)) {
				continue
			}
			lbl := st.hubBase[hub]
			for _, rem := range csr.Adj[csr.Ptr[i]:csr.Ptr[i+1]] {
				edges++
				ups = append(ups, comm.SparseUpdate{Dst: int32(rem.Col),
					Tag: int32(partition.CompH2L), Off: int64(rem.LIdx), Val: lbl})
			}
		}
		if st.batchRow {
			st.pendRow = append(st.pendRow, ups...)
			return edges, nil
		}
		out, err := comm.AllgatherSparse(st.r.RowC, ups)
		if err != nil {
			return edges, err
		}
		st.applyLLabels(lPartsOf(out))
		return edges, nil
	}
	send := make([][]lMsg, st.e.Opt.Mesh.Cols)
	for i, hub := range csr.IDs {
		if !st.hubDirty.Test(int(hub)) {
			continue
		}
		lbl := st.hubBase[hub]
		for _, rem := range csr.Adj[csr.Ptr[i]:csr.Ptr[i+1]] {
			edges++
			send[rem.Col] = append(send[rem.Col], lMsg{LIdx: rem.LIdx, Parent: lbl})
		}
	}
	recv, err := comm.Alltoallv(st.r.RowC, send)
	if err != nil {
		return edges, err
	}
	st.applyLLabels(recv)
	return edges, nil
}

func (st *wccState) applyLLabels(parts [][]lMsg) {
	for _, part := range parts {
		for _, m := range part {
			st.lowerL(m.LIdx, m.Parent)
		}
	}
}

// l2eProp: dirty owned L vertices lower E delegate labels locally.
func (st *wccState) l2eProp() (int64, error) {
	csr := &st.rg.LToE
	var edges int64
	st.lDirty.ForEach(func(li int) {
		lbl := st.lBase[li]
		for _, hub := range csr.Adj[csr.Ptr[li]:csr.Ptr[li+1]] {
			edges++
			st.lowerHub(hub, lbl)
		}
	})
	return edges, nil
}

// l2hProp: dirty owned L vertices message the row delegate of each H
// neighbor whose replicated label is not already as low (delegation knowledge
// saves the message — the live check is identical on the dense and sparse
// arms because nothing between L2E and here touches hub labels).
func (st *wccState) l2hProp() (int64, error) {
	csr := &st.rg.LToH
	hubs := st.e.Part.Hubs
	mesh := st.e.Opt.Mesh
	var edges int64
	if st.sparse[partition.CompL2H] {
		var ups []comm.SparseUpdate
		st.lDirty.ForEach(func(li int) {
			lbl := st.lBase[li]
			for _, hub := range csr.Adj[csr.Ptr[li]:csr.Ptr[li+1]] {
				edges++
				if lbl >= st.hubLabel[hub] {
					continue
				}
				col := hubs.ColBlockOf(hub, mesh)
				ups = append(ups, comm.SparseUpdate{Dst: int32(col),
					Tag: int32(partition.CompL2H), Off: int64(hub), Val: lbl})
			}
		})
		if st.batchRow {
			st.pendRow = append(st.pendRow, ups...)
			return edges, st.flushRowLabels()
		}
		out, err := comm.AllgatherSparse(st.r.RowC, ups)
		if err != nil {
			return edges, err
		}
		st.applyHubLabels(hubPartsOf(out))
		return edges, nil
	}
	send := make([][]hubMsg, mesh.Cols)
	st.lDirty.ForEach(func(li int) {
		lbl := st.lBase[li]
		for _, hub := range csr.Adj[csr.Ptr[li]:csr.Ptr[li+1]] {
			edges++
			if lbl >= st.hubLabel[hub] {
				continue
			}
			col := hubs.ColBlockOf(hub, mesh)
			send[col] = append(send[col], hubMsg{Hub: hub, Parent: lbl})
		}
	})
	recv, err := comm.Alltoallv(st.r.RowC, send)
	if err != nil {
		return edges, err
	}
	st.applyHubLabels(recv)
	return edges, nil
}

func (st *wccState) applyHubLabels(parts [][]hubMsg) {
	for _, part := range parts {
		for _, m := range part {
			st.lowerHub(m.Hub, m.Parent)
		}
	}
}

// flushRowLabels runs the batched row exchange carrying both the H2L and L2H
// label payloads and applies them in the dense schedule's kernel order (all
// H2L lowers, then all L2H lowers). Deferring the H2L applies is safe because
// the kernels between generation and flush read only base labels and hub
// labels, never live L labels. The buffer clears before the exchange even on
// error: a retry re-enters at the top of step 1 and regenerates every update.
func (st *wccState) flushRowLabels() error {
	ups := st.pendRow
	st.pendRow = st.pendRow[:0]
	out, err := comm.AllgatherSparse(st.r.RowC, ups)
	if err != nil {
		return err
	}
	lParts := make([][]lMsg, len(out))
	hubParts := make([][]hubMsg, len(out))
	for j, us := range out {
		for _, u := range us {
			if u.Tag == int32(partition.CompH2L) {
				lParts[j] = append(lParts[j], lMsg{LIdx: int32(u.Off), Parent: u.Val})
			} else {
				hubParts[j] = append(hubParts[j], hubMsg{Hub: int32(u.Off), Parent: u.Val})
			}
		}
	}
	st.applyLLabels(lParts)
	st.applyHubLabels(hubParts)
	return nil
}

// l2lProp: dirty owned L vertices message their L neighbors' owners; one
// world alltoallv, or the sparse world allgather on tail iterations (Off
// carries the original destination ID).
func (st *wccState) l2lProp() (int64, error) {
	csr := &st.rg.L2L
	layout := st.e.Part.Layout
	var edges int64
	if st.sparse[partition.CompL2L] {
		var ups []comm.SparseUpdate
		st.lDirty.ForEach(func(li int) {
			lbl := st.lBase[li]
			for _, dst := range csr.Adj[csr.Ptr[li]:csr.Ptr[li+1]] {
				edges++
				ups = append(ups, comm.SparseUpdate{Dst: int32(layout.Owner(dst)),
					Tag: int32(partition.CompL2L), Off: dst, Val: lbl})
			}
		})
		out, err := comm.AllgatherSparse(st.r.World, ups)
		if err != nil {
			return edges, err
		}
		for _, us := range out {
			for _, u := range us {
				st.lowerL(layout.LocalIdx(u.Off), u.Val)
			}
		}
		return edges, nil
	}
	send := make([][]l2lMsg, layout.P)
	st.lDirty.ForEach(func(li int) {
		lbl := st.lBase[li]
		for _, dst := range csr.Adj[csr.Ptr[li]:csr.Ptr[li+1]] {
			edges++
			send[layout.Owner(dst)] = append(send[layout.Owner(dst)], l2lMsg{Dst: dst, Parent: lbl})
		}
	})
	recv, err := comm.Alltoallv(st.r.World, send)
	if err != nil {
		return edges, err
	}
	for _, part := range recv {
		for _, m := range part {
			st.lowerL(layout.LocalIdx(m.Dst), m.Parent)
		}
	}
	return edges, nil
}

// writeResult assembles this rank's share of the global label array: owned
// non-hub L vertices, then the hub vertices whose original IDs it owns (hub
// labels are identical on all ranks after the per-iteration syncs).
func (st *wccState) writeResult(label []int64) {
	layout := st.e.Part.Layout
	hubs := st.e.Part.Hubs
	for li := 0; li < st.rg.LocalN; li++ {
		v := layout.GlobalOf(st.r.ID, int32(li))
		if _, isHub := hubs.HubOf(v); !isHub {
			label[v] = st.lLabel[li]
		}
	}
	for h, orig := range hubs.Orig {
		if layout.Owner(orig) == st.r.ID {
			label[orig] = st.hubLabel[h]
		}
	}
}
