package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bitmap"
	"repro/internal/comm"
	"repro/internal/partition"
)

// Message types. All parents travel as original vertex IDs.

// lMsg targets an L vertex at a known rank by local index.
type lMsg struct {
	LIdx   int32
	Parent int64
}

// hubMsg targets a hub delegate.
type hubMsg struct {
	Hub    int32
	Parent int64
}

// l2lMsg targets an L vertex by original ID (owner derived from layout).
type l2lMsg struct {
	Dst    int64
	Parent int64
}

// --- EH2EH -----------------------------------------------------------------

// ehPush is the top-down kernel over the 2D-partitioned core subgraph:
// scan active source hubs in this rank's column block, activate destination
// hubs in its row block. With RankWorkers > 1 the active sources are split by
// the edge-aware vertex-cut (Section 5): chunk boundaries follow the prefix
// sum of active-source degrees, not source counts, so one heavy hub cannot
// serialize the kernel.
func (st *rankState) ehPush() (int64, error) {
	push := &st.rg.EHPush
	orig := st.e.Part.Hubs.Orig
	// Collect active source positions.
	var active []int32
	for i, src := range push.IDs {
		if st.hubFrontier.Test(int(src)) {
			active = append(active, int32(i))
		}
	}
	if len(active) == 0 {
		return 0, nil
	}
	workers := st.e.Opt.RankWorkers
	if workers == 1 || len(active) < 2*workers {
		var edges int64
		for _, i := range active {
			parent := orig[push.IDs[i]]
			for _, dst := range push.Adj[push.Ptr[i]:push.Ptr[i+1]] {
				edges++
				if !st.hubVisited.Test(int(dst)) && !st.hubNew.Test(int(dst)) {
					st.hubNew.Set(int(dst))
					st.parentHub[dst] = parent
				}
			}
		}
		return edges, nil
	}
	// Edge-aware vertex cut: prefix-sum active degrees, then split evenly by
	// accumulated degree.
	prefix := make([]int64, len(active)+1)
	for j, i := range active {
		prefix[j+1] = prefix[j] + (push.Ptr[i+1] - push.Ptr[i])
	}
	chunks := edgeCutChunks(prefix, workers)
	// Workers emit candidates into private buffers; the apply step is
	// serial, mirroring the atomics-free discipline of the chip kernels.
	bufs := make([][]hubMsg, len(chunks))
	edgesPer := make([]int64, len(chunks))
	var wg sync.WaitGroup
	for w, ch := range chunks {
		wg.Add(1)
		go func(w int, lo, hi int) {
			defer wg.Done()
			var buf []hubMsg
			var edges int64
			for _, i := range active[lo:hi] {
				parent := orig[push.IDs[i]]
				for _, dst := range push.Adj[push.Ptr[i]:push.Ptr[i+1]] {
					edges++
					if !st.hubVisited.Test(int(dst)) {
						buf = append(buf, hubMsg{Hub: dst, Parent: parent})
					}
				}
			}
			bufs[w] = buf
			edgesPer[w] = edges
		}(w, ch[0], ch[1])
	}
	wg.Wait()
	var edges int64
	for w := range bufs {
		edges += edgesPer[w]
		for _, m := range bufs[w] {
			if !st.hubVisited.Test(int(m.Hub)) && !st.hubNew.Test(int(m.Hub)) {
				st.hubNew.Set(int(m.Hub))
				st.parentHub[m.Hub] = m.Parent
			}
		}
	}
	return edges, nil
}

// edgeCutChunks splits [0, len(prefix)-1) into up to `workers` ranges of
// near-equal accumulated weight. prefix is the weight prefix sum.
func edgeCutChunks(prefix []int64, workers int) [][2]int {
	n := len(prefix) - 1
	total := prefix[n]
	var chunks [][2]int
	lo := 0
	for w := 1; w <= workers && lo < n; w++ {
		target := total * int64(w) / int64(workers)
		hi := sort.Search(n+1, func(i int) bool { return prefix[i] >= target })
		if hi <= lo {
			hi = lo + 1
		}
		if hi > n || w == workers {
			hi = n
		}
		if w == workers {
			hi = n
		}
		chunks = append(chunks, [2]int{lo, hi})
		lo = hi
	}
	return chunks
}

// ehPull is the bottom-up core-subgraph kernel: scan unvisited destination
// hubs in the row block, probing source hubs in the column block against the
// replicated frontier, with early exit on the first active parent.
func (st *rankState) ehPull() (int64, error) {
	pull := &st.rg.EHPull
	orig := st.e.Part.Hubs.Orig
	var edges int64
	for i, dst := range pull.IDs {
		if st.hubVisited.Test(int(dst)) || st.hubNew.Test(int(dst)) {
			continue
		}
		for _, src := range pull.Adj[pull.Ptr[i]:pull.Ptr[i+1]] {
			edges++
			if st.hubFrontier.Test(int(src)) {
				st.hubNew.Set(int(dst))
				st.parentHub[dst] = orig[src]
				break
			}
		}
	}
	return edges, nil
}

// ehPullSegmented is the CG-aware variant (Section 4.3): the source bitmap is
// cut into Segments slices with pre-grouped adjacency; `Segments` worker
// goroutines (the simulated core groups) each own one slice, and destination
// intervals rotate round-robin across steps so no two workers ever write the
// same destination range concurrently. The hot source-bitmap slice stays
// cache-resident per worker — the commodity-CPU analogue of LDM residency.
func (st *rankState) ehPullSegmented() (int64, error) {
	segs := st.e.segPull[st.r.ID]
	s := len(segs)
	orig := st.e.Part.Hubs.Orig
	// Destination intervals over hub-ID space, word-aligned so concurrent
	// bitmap writes never share a word.
	words := (st.k + 63) / 64
	ivBound := make([]int, s+1)
	for i := 0; i <= s; i++ {
		ivBound[i] = (i * words / s) * 64
	}
	ivBound[s] = words * 64
	edgesPer := make([]int64, s)
	for step := 0; step < s; step++ {
		var wg sync.WaitGroup
		for cg := 0; cg < s; cg++ {
			iv := (cg + step) % s
			wg.Add(1)
			go func(cg, iv int) {
				defer wg.Done()
				csr := &segs[cg]
				loID, hiID := int32(ivBound[iv]), int32(ivBound[iv+1])
				// Locate the dst-ID range of this interval in the sorted IDs.
				lo := sort.Search(len(csr.IDs), func(i int) bool { return csr.IDs[i] >= loID })
				hi := sort.Search(len(csr.IDs), func(i int) bool { return csr.IDs[i] >= hiID })
				var edges int64
				for i := lo; i < hi; i++ {
					dst := csr.IDs[i]
					if st.hubVisited.Test(int(dst)) || st.hubNew.Test(int(dst)) {
						continue
					}
					for _, src := range csr.Adj[csr.Ptr[i]:csr.Ptr[i+1]] {
						edges++
						if st.hubFrontier.Test(int(src)) {
							st.hubNew.Set(int(dst))
							st.parentHub[dst] = orig[src]
							break
						}
					}
				}
				edgesPer[cg] += edges
			}(cg, iv)
		}
		wg.Wait()
	}
	var edges int64
	for _, e := range edgesPer {
		edges += e
	}
	return edges, nil
}

// --- E2L / H2L (hub -> L) ---------------------------------------------------

// e2lPush: active E hubs activate owned L vertices; purely local because E is
// delegated on every rank.
func (st *rankState) e2lPush() (int64, error) {
	csr := &st.rg.EToL
	orig := st.e.Part.Hubs.Orig
	var edges int64
	for i, hub := range csr.IDs {
		if !st.hubFrontier.Test(int(hub)) {
			continue
		}
		parent := orig[hub]
		for _, li := range csr.Adj[csr.Ptr[i]:csr.Ptr[i+1]] {
			edges++
			if !st.lVisited.Test(int(li)) && !st.lNew.Test(int(li)) {
				st.lNew.Set(int(li))
				st.parentL[li] = parent
			}
		}
	}
	return edges, nil
}

// e2lPull: unvisited owned L vertices probe their E neighbors against the
// replicated frontier; local, with early exit.
func (st *rankState) e2lPull() (int64, error) {
	csr := &st.rg.LToE
	orig := st.e.Part.Hubs.Orig
	var edges int64
	for li := 0; li < st.rg.LocalN; li++ {
		if csr.Ptr[li] == csr.Ptr[li+1] || st.lVisited.Test(li) || st.lNew.Test(li) {
			continue
		}
		for _, hub := range csr.Adj[csr.Ptr[li]:csr.Ptr[li+1]] {
			edges++
			if st.hubFrontier.Test(int(hub)) {
				st.lNew.Set(li)
				st.parentL[li] = orig[hub]
				break
			}
		}
	}
	return edges, nil
}

// h2lGen walks the H2L component once, calling emit for every (destination
// column, L-index, parent) activation the push ships. The dense and sparse
// solo kernels and the batched multi-source path all generate through this
// one loop body, which is what keeps their receiver-side apply streams
// identical message for message.
func (st *rankState) h2lGen(emit func(col, li int32, parent int64)) int64 {
	csr := &st.rg.HToL
	orig := st.e.Part.Hubs.Orig
	var edges int64
	for i, hub := range csr.IDs {
		if !st.hubFrontier.Test(int(hub)) {
			continue
		}
		parent := orig[hub]
		for _, rem := range csr.Adj[csr.Ptr[i]:csr.Ptr[i+1]] {
			edges++
			emit(rem.Col, rem.LIdx, parent)
		}
	}
	return edges
}

// h2lPush: active H hubs in this rank's column block message their L
// neighbors' owners along the row (the H2L component is stored at the
// intersection of H's column and the owner's row).
func (st *rankState) h2lPush() (int64, error) {
	if st.sparse[partition.CompH2L] {
		return st.h2lPushSparse()
	}
	send := make([][]lMsg, st.e.Opt.Mesh.Cols)
	edges := st.h2lGen(func(col, li int32, parent int64) {
		send[col] = append(send[col], lMsg{LIdx: li, Parent: parent})
	})
	recv, err := comm.Alltoallv(st.r.RowC, send)
	if err != nil {
		return edges, err
	}
	st.applyLMsgs(recv)
	return edges, nil
}

// h2lPushSparse ships the same messages as the dense h2lPush as
// destination-addressed triples over one row allgather. When the L2H push
// also went sparse this iteration (st.batchRow) the updates are parked in
// pendRow instead — the two kernels' payloads then ride a single batched
// exchange at the L2H flush point, applied in the dense schedule's kernel
// order. Generation order matches the dense kernel exactly, so each
// receiver's filtered stream is the same sequence the dense exchange
// delivers.
func (st *rankState) h2lPushSparse() (int64, error) {
	var ups []comm.SparseUpdate
	edges := st.h2lGen(func(col, li int32, parent int64) {
		ups = append(ups, comm.SparseUpdate{Dst: col,
			Tag: int32(partition.CompH2L), Off: int64(li), Val: parent})
	})
	if st.batchRow {
		st.pendRow = append(st.pendRow, ups...)
		return edges, nil
	}
	out, err := comm.AllgatherSparse(st.r.RowC, ups)
	if err != nil {
		return edges, err
	}
	st.applyLMsgs(lPartsOf(out))
	return edges, nil
}

// lPartsOf reshapes received sparse updates into the dense exchange's
// per-source lMsg parts (Off is the destination-local L index).
func lPartsOf(out [][]comm.SparseUpdate) [][]lMsg {
	parts := make([][]lMsg, len(out))
	for j, us := range out {
		for _, u := range us {
			parts[j] = append(parts[j], lMsg{LIdx: int32(u.Off), Parent: u.Val})
		}
	}
	return parts
}

// h2lPull: unvisited owned L vertices probe their H neighbors against the
// replicated hub frontier; local thanks to delegation.
func (st *rankState) h2lPull() (int64, error) {
	csr := &st.rg.LToH
	orig := st.e.Part.Hubs.Orig
	var edges int64
	for li := 0; li < st.rg.LocalN; li++ {
		if csr.Ptr[li] == csr.Ptr[li+1] || st.lVisited.Test(li) || st.lNew.Test(li) {
			continue
		}
		for _, hub := range csr.Adj[csr.Ptr[li]:csr.Ptr[li+1]] {
			edges++
			if st.hubFrontier.Test(int(hub)) {
				st.lNew.Set(li)
				st.parentL[li] = orig[hub]
				break
			}
		}
	}
	return edges, nil
}

// applyLMsgs applies received L activation messages owner-locally. With
// RankWorkers > 1 and enough messages it uses the two-stage destination
// update (paper Section 4.4, third OCS-RMA use case): messages are coarse-
// sorted into word-aligned index ranges, and each range is applied by
// exactly one worker — no atomics, no racing bitmap words.
func (st *rankState) applyLMsgs(recv [][]lMsg) {
	total := 0
	for _, part := range recv {
		total += len(part)
	}
	workers := st.e.Opt.RankWorkers
	if workers > 1 && total >= 4*workers {
		st.applyLMsgsTwoStage(recv, total, workers)
		return
	}
	for _, part := range recv {
		for _, m := range part {
			st.applyOneL(m)
		}
	}
}

func (st *rankState) applyOneL(m lMsg) {
	if !st.lVisited.Test(int(m.LIdx)) && !st.lNew.Test(int(m.LIdx)) {
		st.lNew.Set(int(m.LIdx))
		st.parentL[m.LIdx] = m.Parent
	}
}

// applyLMsgsTwoStage: stage one buckets messages by 64-bit-aligned index
// range (so two ranges never share a bitmap word); stage two applies each
// range on its own worker with exclusive ownership.
func (st *rankState) applyLMsgsTwoStage(recv [][]lMsg, total, workers int) {
	words := (st.rg.LocalN + 63) / 64
	if words == 0 {
		return
	}
	ranges := workers * 4
	if ranges > words {
		ranges = words
	}
	wordsPer := (words + ranges - 1) / ranges
	buckets := make([][]lMsg, ranges)
	per := total/ranges + 1
	for i := range buckets {
		buckets[i] = make([]lMsg, 0, per)
	}
	for _, part := range recv {
		for _, m := range part {
			r := int(m.LIdx) / 64 / wordsPer
			buckets[r] = append(buckets[r], m)
		}
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				r := int(next.Add(1)) - 1
				if r >= ranges {
					return
				}
				for _, m := range buckets[r] {
					st.applyOneL(m)
				}
			}
		}()
	}
	wg.Wait()
}

// --- L2E / L2H (L -> hub) ---------------------------------------------------

// l2ePush: active owned L vertices activate E delegates locally (E is
// delegated everywhere, so no message leaves the rank).
func (st *rankState) l2ePush() (int64, error) {
	csr := &st.rg.LToE
	layout := st.e.Part.Layout
	var edges int64
	st.lFrontier.ForEach(func(li int) {
		for _, hub := range csr.Adj[csr.Ptr[li]:csr.Ptr[li+1]] {
			edges++
			if !st.hubVisited.Test(int(hub)) && !st.hubNew.Test(int(hub)) {
				st.hubNew.Set(int(hub))
				st.parentHub[hub] = layout.GlobalOf(st.r.ID, int32(li))
			}
		}
	})
	return edges, nil
}

// l2ePull: unvisited E hubs probe their owned-L neighbors against the local
// frontier; every rank does its share, with per-rank early exit.
func (st *rankState) l2ePull() (int64, error) {
	csr := &st.rg.EToL
	layout := st.e.Part.Layout
	var edges int64
	for i, hub := range csr.IDs {
		if st.hubVisited.Test(int(hub)) || st.hubNew.Test(int(hub)) {
			continue
		}
		for _, li := range csr.Adj[csr.Ptr[i]:csr.Ptr[i+1]] {
			edges++
			if st.lFrontier.Test(int(li)) {
				st.hubNew.Set(int(hub))
				st.parentHub[hub] = layout.GlobalOf(st.r.ID, li)
				break
			}
		}
	}
	return edges, nil
}

// l2hGen walks active owned L vertices once, calling emit for every
// (destination column, hub, parent) delegate activation the push ships —
// the shared loop body of the dense/sparse solo kernels and the batched
// multi-source path. Delegation knowledge (hubVisited) prunes the message
// before emit, exactly as the original kernels did.
func (st *rankState) l2hGen(emit func(col, hub int32, parent int64)) int64 {
	csr := &st.rg.LToH
	layout := st.e.Part.Layout
	hubs := st.e.Part.Hubs
	mesh := st.e.Opt.Mesh
	var edges int64
	st.lFrontier.ForEach(func(li int) {
		parent := layout.GlobalOf(st.r.ID, int32(li))
		for _, hub := range csr.Adj[csr.Ptr[li]:csr.Ptr[li+1]] {
			edges++
			if st.hubVisited.Test(int(hub)) {
				continue // delegation knowledge saves the message
			}
			emit(int32(hubs.ColBlockOf(hub, mesh)), hub, parent)
		}
	})
	return edges
}

// l2hPush: active owned L vertices message the row delegate of each
// unvisited H neighbor (the rank in this row holding H's column), which
// records the delegate activation; the next hub sync propagates it.
func (st *rankState) l2hPush() (int64, error) {
	if st.sparse[partition.CompL2H] {
		return st.l2hPushSparse()
	}
	send := make([][]hubMsg, st.e.Opt.Mesh.Cols)
	edges := st.l2hGen(func(col, hub int32, parent int64) {
		send[col] = append(send[col], hubMsg{Hub: hub, Parent: parent})
	})
	recv, err := comm.Alltoallv(st.r.RowC, send)
	if err != nil {
		return edges, err
	}
	st.applyHubMsgs(recv)
	return edges, nil
}

// l2hPushSparse is the sparse-triple form of l2hPush (Off carries the hub
// id). With st.batchRow set it appends onto the H2L updates already parked in
// pendRow and flushes the combined frame as the iteration's single row
// exchange; otherwise it exchanges inline.
func (st *rankState) l2hPushSparse() (int64, error) {
	var ups []comm.SparseUpdate
	edges := st.l2hGen(func(col, hub int32, parent int64) {
		ups = append(ups, comm.SparseUpdate{Dst: col,
			Tag: int32(partition.CompL2H), Off: int64(hub), Val: parent})
	})
	if st.batchRow {
		st.pendRow = append(st.pendRow, ups...)
		return edges, st.flushRowSparse()
	}
	out, err := comm.AllgatherSparse(st.r.RowC, ups)
	if err != nil {
		return edges, err
	}
	st.applyHubMsgs(hubPartsOf(out))
	return edges, nil
}

// applyHubMsgs records received delegate activations (the L2H push's receive
// side), in part order.
func (st *rankState) applyHubMsgs(parts [][]hubMsg) {
	for _, part := range parts {
		for _, m := range part {
			if !st.hubVisited.Test(int(m.Hub)) && !st.hubNew.Test(int(m.Hub)) {
				st.hubNew.Set(int(m.Hub))
				st.parentHub[m.Hub] = m.Parent
			}
		}
	}
}

// hubPartsOf reshapes received sparse updates into the dense exchange's
// per-source hubMsg parts (Off is the hub id).
func hubPartsOf(out [][]comm.SparseUpdate) [][]hubMsg {
	parts := make([][]hubMsg, len(out))
	for j, us := range out {
		for _, u := range us {
			parts[j] = append(parts[j], hubMsg{Hub: int32(u.Off), Parent: u.Val})
		}
	}
	return parts
}

// flushRowSparse runs the batched row exchange carrying both the H2L and L2H
// pushes' updates and applies them in the dense schedule's kernel order: all
// H2L activations first, then all L2H delegate activations, each split by tag
// with per-source order preserved. Deferring the H2L applies to this point is
// safe because the kernels between generation and flush (L2E, L2H) read only
// lFrontier and the hub bitmaps, never lNew or parentL. The batch buffer is
// cleared before the exchange even on error: a retry re-enters at the top of
// step 1 and regenerates every update.
func (st *rankState) flushRowSparse() error {
	ups := st.pendRow
	st.pendRow = st.pendRow[:0]
	out, err := comm.AllgatherSparse(st.r.RowC, ups)
	if err != nil {
		return err
	}
	lParts := make([][]lMsg, len(out))
	hubParts := make([][]hubMsg, len(out))
	for j, us := range out {
		for _, u := range us {
			if u.Tag == int32(partition.CompH2L) {
				lParts[j] = append(lParts[j], lMsg{LIdx: int32(u.Off), Parent: u.Val})
			} else {
				hubParts[j] = append(hubParts[j], hubMsg{Hub: int32(u.Off), Parent: u.Val})
			}
		}
	}
	st.applyLMsgs(lParts)
	st.applyHubMsgs(hubParts)
	return nil
}

// l2hPull: unvisited H hubs in this rank's column block probe their L
// neighbors across the row against a row-wide L frontier (one row allgather),
// with early exit.
func (st *rankState) l2hPull() (int64, error) {
	per := int(st.e.Part.Layout.PerRank)
	mesh := st.e.Opt.Mesh
	if st.rowFrontier == nil {
		st.rowFrontier = bitmap.New(per * mesh.Cols)
	}
	if err := gatherFrontier(st.r.RowC, st.lFrontier, st.rowFrontier); err != nil {
		return 0, err
	}
	return st.l2hPullScan(), nil
}

// l2hPullScan is the local probe half of l2hPull, run after rowFrontier is
// populated. The batched path fills every plane's rowFrontier with one
// gather and then scans each plane through this method.
func (st *rankState) l2hPullScan() int64 {
	per := int(st.e.Part.Layout.PerRank)
	mesh := st.e.Opt.Mesh
	csr := &st.rg.HToL
	layout := st.e.Part.Layout
	var edges int64
	for i, hub := range csr.IDs {
		if st.hubVisited.Test(int(hub)) || st.hubNew.Test(int(hub)) {
			continue
		}
		for _, rem := range csr.Adj[csr.Ptr[i]:csr.Ptr[i+1]] {
			edges++
			if st.rowFrontier.Test(int(rem.Col)*per + int(rem.LIdx)) {
				owner := mesh.RankAt(st.r.Row, int(rem.Col))
				st.hubNew.Set(int(hub))
				st.parentHub[hub] = layout.GlobalOf(owner, rem.LIdx)
				break
			}
		}
	}
	return edges
}

// gatherFrontier allgathers each member's local frontier words into the
// member-indexed concatenated bitmap dst.
func gatherFrontier(c *comm.Comm, local *bitmap.Bitmap, dst *bitmap.Bitmap) error {
	parts, err := comm.Allgatherv(c, local.Words())
	if err != nil {
		return err
	}
	wordsPer := len(local.Words())
	dw := dst.Words()
	for m, p := range parts {
		copy(dw[m*wordsPer:(m+1)*wordsPer], p)
	}
	return nil
}

// --- L2L ---------------------------------------------------------------------

// l2lPush: active owned L vertices message their L neighbors' owners. With
// Hierarchical set, messages hop via the intersection rank of the source
// column and destination row (column alltoallv then row alltoallv), the
// paper's forwarding scheme for fewer live global connections; otherwise one
// world alltoallv.
// l2lGenFlat walks active owned L vertices once, calling emit with every
// (owner rank, destination vertex, parent) message of the flat L2L push —
// the shared loop body of the dense and sparse solo kernels and the batched
// multi-source path.
func (st *rankState) l2lGenFlat(emit func(owner int, dst, parent int64)) int64 {
	csr := &st.rg.L2L
	layout := st.e.Part.Layout
	var edges int64
	st.lFrontier.ForEach(func(li int) {
		parent := layout.GlobalOf(st.r.ID, int32(li))
		for _, dst := range csr.Adj[csr.Ptr[li]:csr.Ptr[li+1]] {
			edges++
			emit(layout.Owner(dst), dst, parent)
		}
	})
	return edges
}

// l2lGenRows is l2lGenFlat keyed by the owner's mesh row — stage 1 of the
// hierarchical forwarding scheme.
func (st *rankState) l2lGenRows(emit func(row int, dst, parent int64)) int64 {
	csr := &st.rg.L2L
	layout := st.e.Part.Layout
	mesh := st.e.Opt.Mesh
	var edges int64
	st.lFrontier.ForEach(func(li int) {
		parent := layout.GlobalOf(st.r.ID, int32(li))
		for _, dst := range csr.Adj[csr.Ptr[li]:csr.Ptr[li+1]] {
			edges++
			emit(mesh.RowOf(layout.Owner(dst)), dst, parent)
		}
	})
	return edges
}

func (st *rankState) l2lPush() (int64, error) {
	layout := st.e.Part.Layout
	mesh := st.e.Opt.Mesh
	if !st.e.Opt.Hierarchical {
		if st.sparse[partition.CompL2L] {
			return st.l2lPushSparse()
		}
		send := make([][]l2lMsg, layout.P)
		edges := st.l2lGenFlat(func(owner int, dst, parent int64) {
			send[owner] = append(send[owner], l2lMsg{Dst: dst, Parent: parent})
		})
		recv, err := comm.Alltoallv(st.r.World, send)
		if err != nil {
			return edges, err
		}
		st.applyL2L(recv)
		return edges, nil
	}
	// Stage 1: sort by destination row, send down my column.
	sendRow := make([][]l2lMsg, mesh.Rows)
	edges := st.l2lGenRows(func(row int, dst, parent int64) {
		sendRow[row] = append(sendRow[row], l2lMsg{Dst: dst, Parent: parent})
	})
	viaCol, colErr := comm.Alltoallv(st.r.ColC, sendRow)
	// Stage 2: forward within the destination row by owner column. This runs
	// even when stage 1 failed (with nothing to forward) so every rank keeps
	// the same per-communicator collective schedule under faults.
	sendCol := make([][]l2lMsg, mesh.Cols)
	for _, part := range viaCol {
		for _, m := range part {
			col := mesh.ColOf(layout.Owner(m.Dst))
			sendCol[col] = append(sendCol[col], m)
		}
	}
	recv, rowErr := comm.Alltoallv(st.r.RowC, sendCol)
	if colErr != nil {
		return edges, colErr
	}
	if rowErr != nil {
		return edges, rowErr
	}
	st.applyL2L(recv)
	return edges, nil
}

// l2lPushSparse is the sparse-triple form of the flat (non-hierarchical) L2L
// push: one world allgather of (owner, vertex, parent) triples instead of a
// world alltoallv of dense buffers. Off carries the original vertex id;
// hierarchical mode never reaches here (pickSparse keeps it dense).
func (st *rankState) l2lPushSparse() (int64, error) {
	var ups []comm.SparseUpdate
	edges := st.l2lGenFlat(func(owner int, dst, parent int64) {
		ups = append(ups, comm.SparseUpdate{Dst: int32(owner),
			Tag: int32(partition.CompL2L), Off: dst, Val: parent})
	})
	out, err := comm.AllgatherSparse(st.r.World, ups)
	if err != nil {
		return edges, err
	}
	recv := make([][]l2lMsg, len(out))
	for j, us := range out {
		for _, u := range us {
			recv[j] = append(recv[j], l2lMsg{Dst: u.Off, Parent: u.Val})
		}
	}
	st.applyL2L(recv)
	return edges, nil
}

func (st *rankState) applyL2L(recv [][]l2lMsg) {
	layout := st.e.Part.Layout
	for _, part := range recv {
		for _, m := range part {
			li := layout.LocalIdx(m.Dst)
			if !st.lVisited.Test(int(li)) && !st.lNew.Test(int(li)) {
				st.lNew.Set(int(li))
				st.parentL[li] = m.Parent
			}
		}
	}
}

// l2lPull: one world allgather replicates the L frontier (indexed by
// original vertex ID thanks to the padded block layout), then unvisited
// owned L vertices probe their neighbors with early exit.
func (st *rankState) l2lPull() (int64, error) {
	per := int(st.e.Part.Layout.PerRank)
	if st.worldFrontier == nil {
		st.worldFrontier = bitmap.New(per * st.e.Part.Layout.P)
	}
	if err := gatherFrontier(st.r.World, st.lFrontier, st.worldFrontier); err != nil {
		return 0, err
	}
	return st.l2lPullScan(), nil
}

// l2lPullScan is the local probe half of l2lPull, run after worldFrontier is
// populated (by gatherFrontier solo, or by one batched gather for every
// plane in the multi-source path).
func (st *rankState) l2lPullScan() int64 {
	csr := &st.rg.L2L
	var edges int64
	for li := 0; li < st.rg.LocalN; li++ {
		if csr.Ptr[li] == csr.Ptr[li+1] || st.lVisited.Test(li) || st.lNew.Test(li) {
			continue
		}
		for _, dst := range csr.Adj[csr.Ptr[li]:csr.Ptr[li+1]] {
			edges++
			if st.worldFrontier.Test(int(dst)) {
				st.lNew.Set(li)
				st.parentL[li] = dst
				break
			}
		}
	}
	return edges
}
