package core

import (
	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/trace"
)

// chooseDirections implements sub-iteration direction optimization
// (Section 4.2) plus the tail-iteration representation switch: it fills
// it.Directions and it.Sparse and latches both into the rank state for the
// iteration (retries of a failed iteration keep the same choices, so the
// collective schedule is stable across attempts). Every input is globally
// consistent across ranks — hub bitmaps are replicated, L counts are
// allreduced, and the byte feedback is the previous epilogue's global sum —
// so all ranks compute identical choices and stay in collective lockstep.
//
// Node-local components (EH2EH, E2L, L2E) switch on the source active ratio
// alone: their pull cost is hard to predict from unvisited counts because of
// early exit, exactly as the paper argues. Remote components (H2L, L2H, L2L)
// compare active-source against unvisited-destination ratios, the message-
// count proxies.
func (st *rankState) chooseDirections(it *IterTrace) {
	var s0 int64
	if st.tr != nil {
		s0 = st.tr.Now()
	}
	it.Directions = st.pickDirections(*it)
	it.Sparse = st.pickSparse(*it, it.Directions)
	st.sparse = it.Sparse
	st.batchRow = it.Sparse[partition.CompH2L] && it.Sparse[partition.CompL2H]
	if st.tr != nil {
		// One decision record per iteration: the globally consistent inputs
		// the choice derives from, and the per-component outcome (the
		// Figure 15 unit). Unvisited counts are recomputed here so the
		// tracing-off path never pays for them.
		visitedE := int64(st.hubVisited.CountRange(0, int(st.numE)))
		visitedH := int64(st.hubVisited.CountRange(int(st.numE), st.k))
		args := map[string]int64{
			"active_e":   it.ActiveE,
			"active_h":   it.ActiveH,
			"active_l":   it.ActiveL,
			"unvis_e":    st.numE - visitedE,
			"unvis_h":    int64(st.e.Part.Hubs.NumH) - visitedH,
			"unvis_l":    st.numL - st.visitL,
			"mode":       int64(st.e.Opt.Direction),
			"last_bytes": st.lastIterBytes,
		}
		for c := 0; c < int(partition.NumComponents); c++ {
			args["dir_"+partition.Component(c).String()] = int64(it.Directions[c])
			if it.Sparse[c] {
				args["sparse_"+partition.Component(c).String()] = 1
			}
		}
		st.tr.Emit(trace.Span{Kind: trace.KindDecision, Epoch: st.r.Epoch(),
			Iter: st.curIter, Step: -1, Name: "choose_directions",
			Start: s0, Dur: st.tr.Now() - s0, Args: args})
	}
}

// pickSparse chooses, per remote push component, between the dense
// per-destination exchange and the sparse-update allgather. Only pushing
// remote components are eligible (pull kernels exchange frontiers, not
// messages), and hierarchical L2L always stays dense — two-stage forwarding
// is that mode's point, and its forwarder-ordered applies differ from a flat
// exchange's member order, which would break the dense/sparse bit-exactness
// contract. Under SparseAuto a component goes sparse when its global
// active-source count fits the cutoff and the previous iteration's observed
// global traffic (unknown = -1 right after start or checkpoint resume, on
// every rank alike) fits the byte ceiling.
func (st *rankState) pickSparse(it IterTrace, dirs [partition.NumComponents]stats.Direction) [partition.NumComponents]bool {
	var sp [partition.NumComponents]bool
	mode := st.e.Opt.SparseTail
	if mode == SparseOff {
		return sp
	}
	eligible := func(c partition.Component, activeSrc int64) bool {
		if dirs[c] != stats.DirPush {
			return false
		}
		if c == partition.CompL2L && st.e.Opt.Hierarchical {
			return false
		}
		if mode == SparseAlways {
			return true
		}
		return activeSrc <= st.e.Opt.SparseCutoff &&
			(st.lastIterBytes < 0 || st.lastIterBytes <= st.e.Opt.SparseMaxBytes)
	}
	sp[partition.CompH2L] = eligible(partition.CompH2L, it.ActiveH)
	sp[partition.CompL2H] = eligible(partition.CompL2H, it.ActiveL)
	sp[partition.CompL2L] = eligible(partition.CompL2L, it.ActiveL)
	return sp
}

func (st *rankState) pickDirections(it IterTrace) [partition.NumComponents]stats.Direction {
	var dirs [partition.NumComponents]stats.Direction
	switch st.e.Opt.Direction {
	case ModePushOnly:
		for c := range dirs {
			dirs[c] = stats.DirPush
		}
		return dirs
	case ModePullOnly:
		for c := range dirs {
			dirs[c] = stats.DirPull
		}
		return dirs
	}

	numH := int64(st.e.Part.Hubs.NumH)
	visitedE := int64(st.hubVisited.CountRange(0, int(st.numE)))
	visitedH := int64(st.hubVisited.CountRange(int(st.numE), st.k))
	unvisE := st.numE - visitedE
	unvisH := numH - visitedH
	unvisL := st.numL - st.visitL

	frac := func(num, den int64) float64 {
		if den <= 0 {
			return 0
		}
		return float64(num) / float64(den)
	}
	activeHubFrac := frac(it.ActiveE+it.ActiveH, int64(st.k))
	activeEFrac := frac(it.ActiveE, st.numE)
	activeHFrac := frac(it.ActiveH, numH)
	activeLFrac := frac(it.ActiveL, st.numL)
	unvisHFrac := frac(unvisH, numH)
	unvisLFrac := frac(unvisL, st.numL)

	if st.e.Opt.Direction == ModeWholeIteration {
		// Vanilla direction optimization: one decision from overall frontier
		// density (the Figure 15 baseline).
		totalActive := it.ActiveE + it.ActiveH + it.ActiveL
		d := stats.DirPush
		if frac(totalActive, st.e.Part.Layout.N) > st.e.Opt.PullThreshold {
			d = stats.DirPull
		}
		for c := range dirs {
			dirs[c] = d
		}
		return dirs
	}

	alpha := st.e.Opt.PullThreshold
	beta := st.e.Opt.PullRatio
	pick := func(skip bool, pull bool) stats.Direction {
		if skip {
			// Degree-aware skipping: a sub-iteration with no active sources
			// or no unvisited destinations in its classes does nothing —
			// eliding it is exactly the late-iteration saving the paper
			// claims for sub-iteration direction optimization. The decision
			// uses only globally consistent counts, so every rank skips the
			// same collectives.
			return stats.DirSkip
		}
		if pull {
			return stats.DirPull
		}
		return stats.DirPush
	}
	activeHubs := it.ActiveE + it.ActiveH
	// Node-local components: source active ratio only (paper Section 4.2).
	dirs[partition.CompEH2EH] = pick(activeHubs == 0 || unvisE+unvisH == 0, activeHubFrac > alpha)
	dirs[partition.CompE2L] = pick(it.ActiveE == 0 || unvisL == 0, activeEFrac > alpha)
	dirs[partition.CompL2E] = pick(it.ActiveL == 0 || unvisE == 0, activeLFrac > alpha)
	// Remote components: compare message proxies.
	dirs[partition.CompH2L] = pick(it.ActiveH == 0 || unvisL == 0, unvisLFrac < activeHFrac*beta)
	dirs[partition.CompL2H] = pick(it.ActiveL == 0 || unvisH == 0, unvisHFrac < activeLFrac*beta)
	dirs[partition.CompL2L] = pick(it.ActiveL == 0 || unvisL == 0, unvisLFrac < activeLFrac*beta)
	return dirs
}
