package core

import (
	"time"

	"repro/internal/bitmap"
	"repro/internal/comm"
	"repro/internal/partition"
	"repro/internal/stats"
)

// rankState is the per-rank BFS working set.
//
// Hub (E and H) state is delegated: every rank holds full hubFrontier and
// hubVisited bitmaps over the K hubs, kept coherent by column+row
// allreduce-OR after each hub-activating sub-iteration. hubNew accumulates
// this rank's not-yet-synchronized activations; hubIter accumulates all hubs
// activated in the current iteration (the next hub frontier). L state is
// owner-local only.
type rankState struct {
	e   *Engine
	r   *comm.Rank
	rg  *partition.RankGraph
	rec *stats.Recorder

	k          int // hub count
	numE, numL int64

	hubFrontier *bitmap.Bitmap // replicated: current sources
	hubVisited  *bitmap.Bitmap // replicated: visited as of last sync
	hubNew      *bitmap.Bitmap // local activations since last sync
	hubIter     *bitmap.Bitmap // all activations this iteration (synced)
	parentHub   []int64        // local delegate parent array, reduced at the end

	lFrontier *bitmap.Bitmap // owner-local: current L sources
	lVisited  *bitmap.Bitmap
	lNew      *bitmap.Bitmap
	parentL   []int64

	// scratch buffers reused across iterations
	rowFrontier   *bitmap.Bitmap // row-wide L frontier for L2H pull
	worldFrontier *bitmap.Bitmap // world-wide L frontier for L2L pull

	// cached active counts, recomputed after each hub sync / L update
	activeL int64
	visitL  int64
}

func newRankState(e *Engine, r *comm.Rank) *rankState {
	per := int(e.Part.Layout.PerRank)
	k := e.Part.Hubs.K()
	st := &rankState{
		e:           e,
		r:           r,
		rg:          e.Part.Ranks[r.ID],
		rec:         &stats.Recorder{},
		k:           k,
		numE:        int64(e.Part.Hubs.NumE),
		numL:        e.Part.Layout.N - int64(k),
		hubFrontier: bitmap.New(k),
		hubVisited:  bitmap.New(k),
		hubNew:      bitmap.New(k),
		hubIter:     bitmap.New(k),
		parentHub:   make([]int64, k),
		lFrontier:   bitmap.New(per),
		lVisited:    bitmap.New(per),
		lNew:        bitmap.New(per),
		parentL:     make([]int64, per),
	}
	for i := range st.parentHub {
		st.parentHub[i] = -1
	}
	for i := range st.parentL {
		st.parentL[i] = -1
	}
	return st
}

// bfs runs the main loop and returns the iteration trace. All ranks execute
// it in lockstep; every collective below is reached by every rank in the
// same order (direction choices derive from globally consistent state).
func (st *rankState) bfs(root int64) []IterTrace {
	layout := st.e.Part.Layout
	hubs := st.e.Part.Hubs
	if h, ok := hubs.HubOf(root); ok {
		st.hubFrontier.Set(int(h))
		st.hubVisited.Set(int(h))
		st.parentHub[h] = root
	} else if layout.Owner(root) == st.r.ID {
		li := layout.LocalIdx(root)
		st.lFrontier.Set(int(li))
		st.lVisited.Set(int(li))
		st.parentL[li] = root
		st.activeL = 1
		st.visitL = 1
	}
	// Global L counts for direction decisions.
	st.activeL = comm.AllreduceSumInt64(st.r.World, st.activeL)
	st.visitL = comm.AllreduceSumInt64(st.r.World, st.visitL)

	var trace []IterTrace
	for iter := 0; iter < st.e.Opt.MaxIterations; iter++ {
		it := IterTrace{
			ActiveE: int64(st.hubFrontier.CountRange(0, int(st.numE))),
			ActiveH: int64(st.hubFrontier.CountRange(int(st.numE), st.k)),
			ActiveL: st.activeL,
		}
		it.Directions = st.chooseDirections(it)
		st.runIteration(it.Directions)
		trace = append(trace, it)

		// Advance frontiers. Hub side: hubIter was synced incrementally.
		st.hubFrontier.CopyFrom(st.hubIter)
		st.hubIter.Reset()
		// L side: owner-local swap.
		st.lFrontier.CopyFrom(st.lNew)
		st.lVisited.Or(st.lNew)
		st.lNew.Reset()

		if st.e.Opt.ImmediateParentReduction {
			// The traditional scheme: reconcile delegate parents every
			// iteration. Correctness-neutral but pays a world-wide
			// K-element reduce per iteration — the traffic the paper's
			// delayed reduction eliminates.
			st.reduceParents()
		}

		newHubs := int64(st.hubFrontier.Count())
		st.activeL = comm.AllreduceSumInt64(st.r.World, int64(st.lFrontier.Count()))
		st.visitL += st.activeL
		if newHubs+st.activeL == 0 {
			break
		}
	}

	// Delayed reduction of the delegated parent array (Section 5): one
	// world-wide max-reduce after the run instead of per-iteration traffic.
	st.reduceParents()
	return trace
}

// reduceParents max-reduces the delegated parent array across all ranks.
func (st *rankState) reduceParents() {
	t0 := time.Now()
	base := st.r.Stats
	if len(st.parentHub) > 0 {
		comm.AllreduceMaxInt64(st.r.World, st.parentHub)
	}
	st.rec.Observe(stats.PhaseReduce, stats.DirNone, time.Since(t0), st.r.Stats.Delta(&base), 0)
}

// runIteration executes the six sub-iterations in hub-first order, syncing
// delegated hub state after each group of hub-activating kernels so later
// sub-iterations see the latest visited sets (Section 4.2). Skipped
// sub-iterations are elided entirely — including their collectives, which is
// safe because the skip decision derives from globally consistent counts.
func (st *rankState) runIteration(dirs [partition.NumComponents]stats.Direction) {
	run := func(c partition.Component, push, pull func() int64) {
		d := dirs[c]
		if d == stats.DirSkip {
			st.rec.Observe(stats.PhaseOfComponent(c), d, 0, comm.VolumeStats{}, 0)
			return
		}
		st.observe(c, d, func() int64 {
			if d == stats.DirPush {
				return push()
			}
			return pull()
		})
	}
	// 1. EH2EH (hub -> hub).
	ehPull := st.ehPull
	if st.e.Opt.Segmented {
		ehPull = st.ehPullSegmented
	}
	run(partition.CompEH2EH, st.ehPush, ehPull)
	st.syncHubs()

	// 2. E2L and H2L (hub -> L).
	run(partition.CompE2L, st.e2lPush, st.e2lPull)
	run(partition.CompH2L, st.h2lPush, st.h2lPull)

	// 3. L2E and L2H (L -> hub).
	run(partition.CompL2E, st.l2ePush, st.l2ePull)
	run(partition.CompL2H, st.l2hPush, st.l2hPull)
	st.syncHubs()

	// 4. L2L.
	run(partition.CompL2L, st.l2lPush, st.l2lPull)
}

// observe times a kernel and attributes its traffic delta and edge touches.
func (st *rankState) observe(c partition.Component, d stats.Direction, fn func() int64) {
	t0 := time.Now()
	base := st.r.Stats
	edges := fn()
	st.rec.Observe(stats.PhaseOfComponent(c), d, time.Since(t0), st.r.Stats.Delta(&base), edges)
}

// syncHubs merges local hub activations globally: allreduce-OR down the
// column then across the row reproduces the paper's delegation traffic
// pattern (E and H state moves only on column and row links), after which
// hubNew's contents are globally agreed and folded into visited state.
func (st *rankState) syncHubs() {
	t0 := time.Now()
	base := st.r.Stats
	words := st.hubNew.Words()
	if len(words) > 0 {
		comm.AllreduceOr(st.r.ColC, words)
		comm.AllreduceOr(st.r.RowC, words)
	}
	// hubNew now holds the union of all ranks' new activations (it may
	// include hubs another rank also activated; visited filtering below is
	// idempotent).
	st.hubNew.AndNot(st.hubVisited)
	st.hubIter.Or(st.hubNew)
	st.hubVisited.Or(st.hubNew)
	st.hubNew.Reset()
	st.rec.Observe(stats.PhaseOther, stats.DirNone, time.Since(t0), st.r.Stats.Delta(&base), 0)
}

// writeParents assembles this rank's share of the global parent array:
// its owned L vertices plus the hub vertices whose original IDs it owns
// (hub parents are identical on all ranks after the delayed reduction).
func (st *rankState) writeParents(parent []int64) {
	layout := st.e.Part.Layout
	for i := 0; i < st.rg.LocalN; i++ {
		if st.parentL[i] >= 0 {
			parent[layout.GlobalOf(st.r.ID, int32(i))] = st.parentL[i]
		}
	}
	for h, orig := range st.e.Part.Hubs.Orig {
		if layout.Owner(orig) == st.r.ID && st.parentHub[h] >= 0 {
			parent[orig] = st.parentHub[h]
		}
	}
}
