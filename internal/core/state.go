package core

import (
	"repro/internal/bitmap"
	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/partition"
	"repro/internal/stats"
)

// rankState is the per-rank BFS working set: the workload implementation the
// shared driver loop (workload.go) runs for Engine.Run.
//
// Hub (E and H) state is delegated: every rank holds full hubFrontier and
// hubVisited bitmaps over the K hubs, kept coherent by column+row
// allreduce-OR after each hub-activating sub-iteration. hubNew accumulates
// this rank's not-yet-synchronized activations; hubIter accumulates all hubs
// activated in the current iteration (the next hub frontier). L state is
// owner-local only.
type rankState struct {
	driver

	root int64

	k          int // hub count
	numE, numL int64

	hubFrontier *bitmap.Bitmap // replicated: current sources
	hubVisited  *bitmap.Bitmap // replicated: visited as of last sync
	hubNew      *bitmap.Bitmap // local activations since last sync
	hubIter     *bitmap.Bitmap // all activations this iteration (synced)
	parentHub   []int64        // local delegate parent array, reduced at the end

	lFrontier *bitmap.Bitmap // owner-local: current L sources
	lVisited  *bitmap.Bitmap
	lNew      *bitmap.Bitmap
	parentL   []int64

	// scratch buffers reused across iterations
	rowFrontier   *bitmap.Bitmap // row-wide L frontier for L2H pull
	worldFrontier *bitmap.Bitmap // world-wide L frontier for L2L pull

	// cached active counts, recomputed after each hub sync / L update
	activeL int64
	visitL  int64

	// pendNewHubs/pendAL stage the epilogue's agreed global counts between
	// step 3 and endIter (committed only after the iteration passes the vote).
	pendNewHubs, pendAL int64

	snaps [numSteps]iterSnapshot
}

// One iteration is four steps, each ending at a consistent collective
// boundary so a retry can re-enter at the lowest globally failed step,
// short-circuiting everything that already completed cleanly on every rank:
//
//	step 0: EH2EH + hub sync
//	step 1: E2L, H2L, L2E, L2H + hub sync
//	step 2: L2L
//	step 3: epilogue — frontier advance, optional immediate parent
//	        reduction, and the global active-L allreduce
const numSteps = 4

// drainBit is the iteration vote's graceful-drain flag, carried in the same
// OR-word as the failed-step mask (word 0). Bit 63 can never collide with a
// step index, and the vote strips it before any step-mask inspection.
const drainBit uint64 = 1 << 63

// iterSnapshot captures the state a step needs to be re-executed after a
// collective failure: every frontier/visited bitmap plus the cached global
// counts. The parent arrays are deliberately NOT captured — parent updates are
// monotone (a slot is written at most once per discovery, always with a valid
// BFS parent at the discovering level), so any write a failed attempt left
// behind is either re-performed identically by the retry or is already a
// correct parent for that vertex.
//
// The stats recorder is captured by the driver alongside this snapshot
// (driver.recSnaps): a retry re-enters mid-iteration and re-observes the
// re-executed kernels, so the failed attempt's observations must not stay in
// the aggregates. Trace spans are deliberately NOT rolled back — the timeline
// shows what actually ran, with failed attempts distinguished by their
// Attempt field.
type iterSnapshot struct {
	hubFrontier, hubVisited, hubNew, hubIter []uint64
	lFrontier, lVisited, lNew                []uint64
	activeL, visitL                          int64
}

func snapWords(dst *[]uint64, src *bitmap.Bitmap) {
	w := src.Words()
	if cap(*dst) < len(w) {
		*dst = make([]uint64, len(w))
	}
	*dst = (*dst)[:len(w)]
	copy(*dst, w)
}

func (st *rankState) snapshot(g int) {
	s := &st.snaps[g]
	snapWords(&s.hubFrontier, st.hubFrontier)
	snapWords(&s.hubVisited, st.hubVisited)
	snapWords(&s.hubNew, st.hubNew)
	snapWords(&s.hubIter, st.hubIter)
	snapWords(&s.lFrontier, st.lFrontier)
	snapWords(&s.lVisited, st.lVisited)
	snapWords(&s.lNew, st.lNew)
	s.activeL = st.activeL
	s.visitL = st.visitL
}

func (st *rankState) restore(g int) {
	s := &st.snaps[g]
	copy(st.hubFrontier.Words(), s.hubFrontier)
	copy(st.hubVisited.Words(), s.hubVisited)
	copy(st.hubNew.Words(), s.hubNew)
	copy(st.hubIter.Words(), s.hubIter)
	copy(st.lFrontier.Words(), s.lFrontier)
	copy(st.lVisited.Words(), s.lVisited)
	copy(st.lNew.Words(), s.lNew)
	st.activeL = s.activeL
	st.visitL = s.visitL
}

func newRankState(e *Engine, r *comm.Rank, root int64) *rankState {
	per := int(e.Part.Layout.PerRank)
	k := e.Part.Hubs.K()
	st := &rankState{
		driver:      newDriver(e, r, e.Opt.MaxIterations),
		root:        root,
		k:           k,
		numE:        int64(e.Part.Hubs.NumE),
		numL:        e.Part.Layout.N - int64(k),
		hubFrontier: bitmap.New(k),
		hubVisited:  bitmap.New(k),
		hubNew:      bitmap.New(k),
		hubIter:     bitmap.New(k),
		parentHub:   make([]int64, k),
		lFrontier:   bitmap.New(per),
		lVisited:    bitmap.New(per),
		lNew:        bitmap.New(per),
		parentL:     make([]int64, per),
	}
	for i := range st.parentHub {
		st.parentHub[i] = -1
	}
	for i := range st.parentL {
		st.parentL[i] = -1
	}
	return st
}

func (st *rankState) drv() *driver { return &st.driver }

// bootstrap seeds the fresh-start state: the root in its frontier, then the
// global L counts for direction decisions. Bootstrap rides the control plane:
// there is no prior consistent state to retry from.
func (st *rankState) bootstrap() error {
	layout := st.e.Part.Layout
	hubs := st.e.Part.Hubs
	root := st.root
	if h, ok := hubs.HubOf(root); ok {
		st.hubFrontier.Set(int(h))
		st.hubVisited.Set(int(h))
		st.parentHub[h] = root
	} else if layout.Owner(root) == st.r.ID {
		li := layout.LocalIdx(root)
		st.lFrontier.Set(int(li))
		st.lVisited.Set(int(li))
		st.parentL[li] = root
		st.activeL = 1
		st.visitL = 1
	}
	st.activeL = comm.ControlSumInt64(st.r.World, st.activeL)
	st.visitL = comm.ControlSumInt64(st.r.World, st.visitL)
	return nil
}

// ckpt exposes the BFS checkpoint geometry: frontier/visited bitmaps plus
// both parent arrays. hubNew/hubIter/lNew are all empty at every capture
// point, so they are not part of the on-disk state.
func (st *rankState) ckpt() ckptSlices {
	return ckptSlices{
		hubF: st.hubFrontier.Words(), hubV: st.hubVisited.Words(),
		lF: st.lFrontier.Words(), lV: st.lVisited.Words(),
		pHub: st.parentHub, pL: st.parentL,
		activeL: st.activeL, visitL: st.visitL,
	}
}

func (st *rankState) loadState(cs *checkpoint.State) {
	copy(st.hubFrontier.Words(), cs.HubFrontier)
	copy(st.hubVisited.Words(), cs.HubVisited)
	copy(st.lFrontier.Words(), cs.LFrontier)
	copy(st.lVisited.Words(), cs.LVisited)
	copy(st.parentHub, cs.ParentHub)
	copy(st.parentL, cs.ParentL)
	st.activeL = cs.ActiveL
	st.visitL = cs.VisitL
}

// beginIter fills the frontier composition and latches the iteration's
// direction and sparse choices (chooseDirections), which retries keep.
func (st *rankState) beginIter(it *IterTrace) {
	it.ActiveE = int64(st.hubFrontier.CountRange(0, int(st.numE)))
	it.ActiveH = int64(st.hubFrontier.CountRange(int(st.numE), st.k))
	it.ActiveL = st.activeL
	st.chooseDirections(it)
	st.pendNewHubs, st.pendAL = 0, 0
}

func (st *rankState) step(g int, it *IterTrace) error {
	return st.runStep(g, it.Directions, &st.pendNewHubs, &st.pendAL)
}

// endIter commits the epilogue's agreed counts; the run converges when no
// hub and no L vertex was newly discovered.
func (st *rankState) endIter(it *IterTrace) bool {
	st.activeL = st.pendAL
	st.visitL += st.pendAL
	return st.pendNewHubs+st.pendAL == 0
}

// finalize is the delayed reduction of the delegated parent array
// (Section 5): one world-wide max-reduce after the run instead of
// per-iteration traffic.
func (st *rankState) finalize() error {
	return st.reduceParents()
}

// reduceParents max-reduces the delegated parent array across all ranks.
func (st *rankState) reduceParents() error {
	return reduceMaxParents(&st.driver, st.parentHub)
}

// runStep executes one of the iteration's four steps. Kernels run in
// hub-first order, syncing delegated hub state after each group of
// hub-activating kernels so later sub-iterations see the latest visited sets
// (Section 4.2). Skipped sub-iterations are elided entirely — including their
// collectives, which is safe because the skip decision derives from globally
// consistent counts. A collective error inside one kernel does NOT
// short-circuit the step: detection is symmetric only within the failing
// communicator (one column's alltoallv can fail while the others succeed), so
// every rank must keep executing the identical per-communicator collective
// schedule to stay in rendezvous lockstep. The first error is collected and
// resolved globally by the caller's control-plane vote.
func (st *rankState) runStep(g int, dirs [partition.NumComponents]stats.Direction, newHubs, al *int64) error {
	var firstErr error
	run := func(c partition.Component, push, pull func() (int64, error)) {
		err := st.runComp(c, dirs[c], func() (int64, error) {
			if dirs[c] == stats.DirPush {
				return push()
			}
			return pull()
		})
		if firstErr == nil {
			firstErr = err
		}
	}
	switch g {
	case 0:
		// EH2EH (hub -> hub), then sync.
		ehPull := st.ehPull
		switch {
		case st.e.Opt.SegmentAdaptive:
			ehPull = st.ehPullAdaptive
		case st.e.Opt.Segmented:
			ehPull = st.ehPullSegmented
		}
		run(partition.CompEH2EH, st.ehPush, ehPull)
		// EH2EH is the only kernel of this step that can set hubNew, and the
		// previous sync left hubNew empty — when it was skipped the allreduce
		// pair would carry all-zero words, so elide it too. The skip derives
		// from the same globally consistent counts as the direction choice,
		// so every rank elides the same collectives.
		if dirs[partition.CompEH2EH] != stats.DirSkip {
			if err := st.syncHubs(); firstErr == nil {
				firstErr = err
			}
		}
	case 1:
		// E2L and H2L (hub -> L), then L2E and L2H (L -> hub), then sync.
		// A retry re-enters here with a stale batch buffer from the failed
		// attempt; the re-executed kernels regenerate every update.
		st.pendRow = st.pendRow[:0]
		run(partition.CompE2L, st.e2lPush, st.e2lPull)
		run(partition.CompH2L, st.h2lPush, st.h2lPull)
		run(partition.CompL2E, st.l2ePush, st.l2ePull)
		run(partition.CompL2H, st.l2hPush, st.l2hPull)
		// Only the L->hub kernels (L2E, L2H) set hubNew here — E2L and H2L
		// write lNew. When both were skipped the hub sync is an all-zero
		// exchange; elide it, same globally consistent reasoning as step 0.
		if dirs[partition.CompL2E] != stats.DirSkip || dirs[partition.CompL2H] != stats.DirSkip {
			if err := st.syncHubs(); firstErr == nil {
				firstErr = err
			}
		}
	case 2:
		run(partition.CompL2L, st.l2lPush, st.l2lPull)
	case 3:
		// Epilogue: advance frontiers and agree on the global L count.
		st.r.SetTag(TagEpilogue)
		st.hubFrontier.CopyFrom(st.hubIter)
		st.hubIter.Reset()
		st.lFrontier.CopyFrom(st.lNew)
		st.lVisited.Or(st.lNew)
		st.lNew.Reset()
		if st.e.Opt.ImmediateParentReduction {
			// The traditional scheme: reconcile delegate parents every
			// iteration. Correctness-neutral but pays a world-wide K-element
			// reduce per iteration — the traffic the paper's delayed
			// reduction eliminates.
			st.r.SetTag(TagReduce)
			if err := st.reduceParents(); firstErr == nil {
				firstErr = err
			}
			st.r.SetTag(TagEpilogue)
		}
		*newHubs = int64(st.hubFrontier.Count())
		// One pair-allreduce agrees on the global active-L count and the
		// iteration's observed data-plane bytes (the recorder delta since
		// iteration start, i.e. kernel + sync + reduce traffic; the epilogue
		// collective itself is not recorder-observed). The byte total feeds
		// the next iteration's dense-vs-sparse choice; summing it globally
		// keeps the choice identical on every rank. Committed only on
		// success, so a retried epilogue cannot leave ranks disagreeing.
		iterBytes := commBytes(st.rec) - st.iterBytesBase
		sums, err := comm.AllreduceSumInt64s(st.r.World,
			[]int64{int64(st.lFrontier.Count()), iterBytes})
		if firstErr == nil {
			firstErr = err
		}
		if err == nil {
			*al = sums[0]
			st.lastIterBytes = sums[1]
		}
	}
	return firstErr
}

// syncHubs merges local hub activations globally: allreduce-OR down the
// column then across the row reproduces the paper's delegation traffic
// pattern (E and H state moves only on column and row links), after which
// hubNew's contents are globally agreed and folded into visited state.
func (st *rankState) syncHubs() error {
	err := syncHubWords(&st.driver, st.hubNew.Words(), "hub_sync")
	// hubNew now holds the union of all ranks' new activations (it may
	// include hubs another rank also activated; visited filtering below is
	// idempotent).
	st.hubNew.AndNot(st.hubVisited)
	st.hubIter.Or(st.hubNew)
	st.hubVisited.Or(st.hubNew)
	st.hubNew.Reset()
	return err
}

// writeParents assembles this rank's share of the global parent array:
// its owned L vertices plus the hub vertices whose original IDs it owns
// (hub parents are identical on all ranks after the delayed reduction).
func (st *rankState) writeParents(parent []int64) {
	layout := st.e.Part.Layout
	for i := 0; i < st.rg.LocalN; i++ {
		if st.parentL[i] >= 0 {
			parent[layout.GlobalOf(st.r.ID, int32(i))] = st.parentL[i]
		}
	}
	for h, orig := range st.e.Part.Hubs.Orig {
		if layout.Owner(orig) == st.r.ID && st.parentHub[h] >= 0 {
			parent[orig] = st.parentHub[h]
		}
	}
}
