package core

import (
	"errors"
	"fmt"
	"math/bits"
	"time"

	"repro/internal/bitmap"
	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/trace"
)

// rankState is the per-rank BFS working set.
//
// Hub (E and H) state is delegated: every rank holds full hubFrontier and
// hubVisited bitmaps over the K hubs, kept coherent by column+row
// allreduce-OR after each hub-activating sub-iteration. hubNew accumulates
// this rank's not-yet-synchronized activations; hubIter accumulates all hubs
// activated in the current iteration (the next hub frontier). L state is
// owner-local only.
type rankState struct {
	e   *Engine
	r   *comm.Rank
	rg  *partition.RankGraph
	rec *stats.Recorder

	// tr is the rank's span stream (nil when tracing is off); curIter,
	// curStep and curAttempt are the coordinates stamped on emitted spans.
	tr         *trace.Stream
	curIter    int64
	curStep    int
	curAttempt int

	k          int // hub count
	numE, numL int64

	hubFrontier *bitmap.Bitmap // replicated: current sources
	hubVisited  *bitmap.Bitmap // replicated: visited as of last sync
	hubNew      *bitmap.Bitmap // local activations since last sync
	hubIter     *bitmap.Bitmap // all activations this iteration (synced)
	parentHub   []int64        // local delegate parent array, reduced at the end

	lFrontier *bitmap.Bitmap // owner-local: current L sources
	lVisited  *bitmap.Bitmap
	lNew      *bitmap.Bitmap
	parentL   []int64

	// scratch buffers reused across iterations
	rowFrontier   *bitmap.Bitmap // row-wide L frontier for L2H pull
	worldFrontier *bitmap.Bitmap // world-wide L frontier for L2L pull

	// cached active counts, recomputed after each hub sync / L update
	activeL int64
	visitL  int64

	// Sparse-tail plumbing. sparse holds the iteration's per-component
	// dense-vs-sparse choices and batchRow whether the H2L and L2H payloads
	// ride one batched row exchange; both are set once per iteration by
	// chooseDirections, so retries of the same iteration keep the same
	// collective schedule. lastIterBytes is the previous iteration's
	// globally summed data-plane bytes, fed back by the epilogue allreduce
	// (-1 = unknown: the first iteration, and the first after a checkpoint
	// resume — identically on every rank, which keeps the adaptive choice in
	// lockstep). iterBytesBase is the recorder's byte total at iteration
	// start; pendRow buffers batched updates between the H2L and L2H
	// kernels.
	sparse        [partition.NumComponents]bool
	batchRow      bool
	lastIterBytes int64
	iterBytesBase int64
	pendRow       []comm.SparseUpdate

	// resilience bookkeeping (only exercised under a fault transport)
	retries  int64
	recovery time.Duration

	// Fail-stop recovery plumbing, set by the engine before bfs runs.
	store       *checkpoint.Store    // nil when checkpointing is off
	scope       *checkpoint.RunScope // nil when checkpointing is off
	resumeIter  int64                // -2 fresh start; >= -1 replay the chain to here
	replaced    bool                 // slot died last epoch: reload the graph tier
	writer      *checkpoint.Writer
	resumeState *checkpoint.State // replayed state, seeds the writer's shadow
	replayDur   time.Duration     // wall clock spent replaying (engine takes the max)
}

// One iteration is four steps, each ending at a consistent collective
// boundary so a retry can re-enter at the lowest globally failed step,
// short-circuiting everything that already completed cleanly on every rank:
//
//	step 0: EH2EH + hub sync
//	step 1: E2L, H2L, L2E, L2H + hub sync
//	step 2: L2L
//	step 3: epilogue — frontier advance, optional immediate parent
//	        reduction, and the global active-L allreduce
const numSteps = 4

// iterSnapshot captures the state a step needs to be re-executed after a
// collective failure: every frontier/visited bitmap plus the cached global
// counts. The parent arrays are deliberately NOT captured — parent updates are
// monotone (a slot is written at most once per discovery, always with a valid
// BFS parent at the discovering level), so any write a failed attempt left
// behind is either re-performed identically by the retry or is already a
// correct parent for that vertex.
//
// The stats recorder IS captured (by value: it is all arrays and scalars).
// A retry re-enters runStep mid-iteration and re-observes the re-executed
// kernels; without rolling the recorder back to the step boundary, the
// failed attempt's timings, traffic volumes and edge touches would stay in
// the aggregates and double-count every re-entered span. Trace spans are
// deliberately NOT rolled back — the timeline shows what actually ran, with
// failed attempts distinguished by their Attempt field.
type iterSnapshot struct {
	hubFrontier, hubVisited, hubNew, hubIter []uint64
	lFrontier, lVisited, lNew                []uint64
	activeL, visitL                          int64
	rec                                      stats.Recorder
}

func snapWords(dst *[]uint64, src *bitmap.Bitmap) {
	w := src.Words()
	if cap(*dst) < len(w) {
		*dst = make([]uint64, len(w))
	}
	*dst = (*dst)[:len(w)]
	copy(*dst, w)
}

func (st *rankState) snapshot(s *iterSnapshot) {
	snapWords(&s.hubFrontier, st.hubFrontier)
	snapWords(&s.hubVisited, st.hubVisited)
	snapWords(&s.hubNew, st.hubNew)
	snapWords(&s.hubIter, st.hubIter)
	snapWords(&s.lFrontier, st.lFrontier)
	snapWords(&s.lVisited, st.lVisited)
	snapWords(&s.lNew, st.lNew)
	s.activeL = st.activeL
	s.visitL = st.visitL
	s.rec = *st.rec
}

func (st *rankState) restore(s *iterSnapshot) {
	copy(st.hubFrontier.Words(), s.hubFrontier)
	copy(st.hubVisited.Words(), s.hubVisited)
	copy(st.hubNew.Words(), s.hubNew)
	copy(st.hubIter.Words(), s.hubIter)
	copy(st.lFrontier.Words(), s.lFrontier)
	copy(st.lVisited.Words(), s.lVisited)
	copy(st.lNew.Words(), s.lNew)
	st.activeL = s.activeL
	st.visitL = s.visitL
	*st.rec = s.rec
}

func newRankState(e *Engine, r *comm.Rank) *rankState {
	per := int(e.Part.Layout.PerRank)
	k := e.Part.Hubs.K()
	st := &rankState{
		e:           e,
		r:           r,
		rg:          e.Part.Ranks[r.ID],
		rec:         &stats.Recorder{},
		tr:          r.Trace(),
		curIter:     -1,
		curStep:     -1,
		k:           k,
		numE:        int64(e.Part.Hubs.NumE),
		numL:        e.Part.Layout.N - int64(k),
		hubFrontier: bitmap.New(k),
		hubVisited:  bitmap.New(k),
		hubNew:      bitmap.New(k),
		hubIter:     bitmap.New(k),
		parentHub:   make([]int64, k),
		lFrontier:   bitmap.New(per),
		lVisited:    bitmap.New(per),
		lNew:        bitmap.New(per),
		parentL:     make([]int64, per),
		resumeIter:  -2,

		lastIterBytes: -1,
	}
	for i := range st.parentHub {
		st.parentHub[i] = -1
	}
	for i := range st.parentL {
		st.parentL[i] = -1
	}
	return st
}

// plantRoot seeds the bootstrap state: the root in its frontier, then the
// global L counts for direction decisions. Bootstrap rides the control plane:
// there is no prior consistent state to retry from.
func (st *rankState) plantRoot(root int64) {
	layout := st.e.Part.Layout
	hubs := st.e.Part.Hubs
	if h, ok := hubs.HubOf(root); ok {
		st.hubFrontier.Set(int(h))
		st.hubVisited.Set(int(h))
		st.parentHub[h] = root
	} else if layout.Owner(root) == st.r.ID {
		li := layout.LocalIdx(root)
		st.lFrontier.Set(int(li))
		st.lVisited.Set(int(li))
		st.parentL[li] = root
		st.activeL = 1
		st.visitL = 1
	}
	st.activeL = comm.ControlSumInt64(st.r.World, st.activeL)
	st.visitL = comm.ControlSumInt64(st.r.World, st.visitL)
}

// loadCheckpoint rebuilds the rank's iteration state by replaying the delta
// chain up to resumeIter. A replaced rank slot (its predecessor fail-stopped
// last epoch) additionally reloads and verifies its graph-tier partition —
// the read a rejoining replacement pays, and the bulk of BytesRestored.
// Segments beyond the resume point are truncated: the re-executed iterations
// rewrite them, and a stale or torn tail must not shadow the rewrite.
func (st *rankState) loadCheckpoint() error {
	hubWords := len(st.hubFrontier.Words())
	lWords := len(st.lFrontier.Words())
	cs, n, err := st.scope.Replay(st.r.ID, st.resumeIter, hubWords, lWords, len(st.parentHub), len(st.parentL))
	st.rec.FailStop.BytesRestored += n
	if err != nil {
		return err
	}
	if st.replaced && st.store != nil {
		var rg partition.RankGraph
		gn, err := st.store.ReadRankGraph(st.r.ID, &rg)
		st.rec.FailStop.BytesRestored += gn
		if err != nil {
			return err
		}
		if rg.LocalN != st.rg.LocalN {
			return fmt.Errorf("core: graph tier for rank %d has LocalN %d, want %d",
				st.r.ID, rg.LocalN, st.rg.LocalN)
		}
	}
	copy(st.hubFrontier.Words(), cs.HubFrontier)
	copy(st.hubVisited.Words(), cs.HubVisited)
	copy(st.lFrontier.Words(), cs.LFrontier)
	copy(st.lVisited.Words(), cs.LVisited)
	copy(st.parentHub, cs.ParentHub)
	copy(st.parentL, cs.ParentL)
	st.activeL = cs.ActiveL
	st.visitL = cs.VisitL
	st.resumeState = cs
	return st.scope.Truncate(st.r.ID, st.resumeIter)
}

// capture queues the state as of completing iteration iter to the async
// checkpoint writer; the synchronous cost is one memcpy into a capture
// buffer. must forces it through (the bootstrap segment, without which the
// chain is useless) instead of dropping when both buffers are in flight.
// hubNew/hubIter/lNew are all empty at every capture point, so they are not
// part of the on-disk state.
func (st *rankState) capture(iter int64, must bool) {
	var s0 int64
	if st.tr != nil {
		s0 = st.tr.Now()
	}
	ok := st.writer.Checkpoint(iter, must,
		st.hubFrontier.Words(), st.hubVisited.Words(),
		st.lFrontier.Words(), st.lVisited.Words(),
		st.parentHub, st.parentL, st.activeL, st.visitL)
	if st.tr != nil {
		sp := trace.Span{Kind: trace.KindCheckpoint, Epoch: st.r.Epoch(),
			Iter: iter, Step: -1, Name: "capture", Start: s0, Dur: st.tr.Now() - s0}
		if !ok {
			sp.Args = map[string]int64{"dropped": 1}
		}
		st.tr.Emit(sp)
	}
}

// vote is the retry-boundary agreement over the reliable control plane.
// Word 0 ORs every rank's failed-step mask; the remaining words OR a
// dead-rank bitmask assembled from typed collective errors plus the rank's
// own death latch — a dead rank keeps participating in control collectives,
// so the "zombie" acts as its own failure detector and no timeout is needed
// for unanimous detection. Returns the global step mask and the agreed
// dead-rank list.
func (st *rankState) vote(stepMask uint64, errs ...error) (uint64, []int) {
	ranks := st.e.Opt.Ranks
	words := make([]uint64, 1+(ranks+63)/64)
	words[0] = stepMask
	for _, err := range errs {
		var ce *comm.CollectiveError
		if errors.As(err, &ce) && errors.Is(ce.Err, comm.ErrRankDead) {
			words[1+ce.Rank/64] |= 1 << uint(ce.Rank%64)
		}
	}
	if st.r.Dead() {
		words[1+st.r.ID/64] |= 1 << uint(st.r.ID%64)
	}
	agg := comm.ControlOrWords(st.r.World, words)
	var dead []int
	for i := 0; i < ranks; i++ {
		if agg[1+i/64]&(1<<uint(i%64)) != 0 {
			dead = append(dead, i)
		}
	}
	return agg[0], dead
}

// commBytes is the recorder's total observed data-plane traffic; deltas of it
// across an iteration feed the sparse-tail byte ceiling.
func commBytes(rec *stats.Recorder) int64 {
	v := rec.CommBreakdown()
	return v.TotalBytes()
}

func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// bfs runs the main loop for one world epoch and returns the iteration trace.
// All ranks execute it in lockstep; every collective below is reached by
// every rank in the same order (direction choices derive from globally
// consistent state).
//
// Under a fault transport the loop becomes a step-granular retry loop: each
// of an iteration's four steps is snapshotted on entry, collective errors are
// collected without breaking the collective schedule, and at the iteration
// boundary all ranks vote over the reliable control plane. The vote carries a
// failed-step mask — transient errors restore to the lowest globally failed
// step and re-execute only from there, so components that completed cleanly
// on every rank are not re-run — and a dead-rank bitmask. Death is the one
// non-retryable verdict: every rank returns a *deadWorldError and the engine
// rebuilds the world at the next epoch and resumes from checkpoint. Retry is
// idempotent because visited/parent updates are monotone. MaxRetries
// consecutive failed votes (or MaxIterations without an empty frontier) abort
// with ErrNoConvergence.
func (st *rankState) bfs(root int64) ([]IterTrace, error) {
	faulty := st.r.Faulty()

	// Epoch setup point: a rank can die before the traversal proper — the
	// "failure during partitioning/setup" case — modeled as a tagged barrier
	// at epoch start plus a death vote. Only run under a fault transport;
	// a reliable world has nothing to detect.
	if faulty {
		st.r.SetIter(-1)
		st.r.SetTag(TagSetup)
		berr := st.r.World.Barrier()
		if _, dead := st.vote(0, berr); len(dead) > 0 {
			return nil, &deadWorldError{dead: dead}
		}
		// A transient setup-barrier error is harmless: the barrier carries
		// no state and the vote just agreed nobody died.
	}

	startIter := 0
	var initErr error
	if st.scope != nil && st.resumeIter >= -1 {
		t0 := time.Now()
		var s0 int64
		if st.tr != nil {
			s0 = st.tr.Now()
		}
		initErr = st.loadCheckpoint()
		st.replayDur = time.Since(t0)
		if st.tr != nil {
			sp := trace.Span{Kind: trace.KindRecovery, Iter: st.resumeIter, Step: -1,
				Name: "replay", Start: s0, Dur: st.tr.Now() - s0,
				Bytes: st.rec.FailStop.BytesRestored}
			if initErr != nil {
				sp.Err = 1
			}
			st.tr.Emit(sp)
		}
		startIter = int(st.resumeIter) + 1
	} else {
		st.plantRoot(root)
		if st.scope != nil {
			// A fresh start over an existing scope (e.g. a chain too torn to
			// resume) must clear any stale tail before rewriting it.
			initErr = st.scope.Truncate(st.r.ID, -1)
		}
	}
	if st.scope != nil && initErr == nil {
		// The async writer goroutine records on its own forked stream: a
		// trace stream is single-writer and the rank goroutine keeps st.tr.
		var wtr *trace.Stream
		if st.tr != nil {
			wtr = st.tr.Fork()
		}
		st.writer, initErr = checkpoint.NewWriter(st.scope, st.r.ID,
			len(st.hubFrontier.Words()), len(st.lFrontier.Words()),
			len(st.parentHub), len(st.parentL), st.resumeState, wtr)
	}
	if st.writer != nil {
		defer func() {
			ws := st.writer.Close()
			st.rec.FailStop.CheckpointSegments += ws.Segments
			st.rec.FailStop.CheckpointBytes += ws.Bytes
			st.rec.FailStop.CheckpointDropped += ws.Dropped
			st.rec.FailStop.CheckpointErrors += ws.Errors
		}()
	}
	if st.scope != nil {
		// Init vote: a rank aborting on a local replay/setup error must not
		// leave the others stuck in the iteration loop's collectives. Rides
		// the control plane, with or without a fault transport.
		var bad int64
		if initErr != nil {
			bad = 1
		}
		if comm.ControlSumInt64(st.r.World, bad) > 0 {
			if initErr == nil {
				initErr = errRemoteRank
			}
			return nil, fmt.Errorf("core: checkpoint init failed: %w", initErr)
		}
		if st.resumeState == nil {
			st.capture(-1, true)
		}
	}

	var snaps [numSteps]iterSnapshot
	var itrace []IterTrace
	attempt := 0
	converged := false
	for iter := startIter; iter < st.e.Opt.MaxIterations; iter++ {
		st.r.SetIter(int64(iter))
		st.curIter = int64(iter)
		st.curAttempt = attempt
		attemptStart := time.Now()
		st.iterBytesBase = commBytes(st.rec)
		it := IterTrace{
			ActiveE: int64(st.hubFrontier.CountRange(0, int(st.numE))),
			ActiveH: int64(st.hubFrontier.CountRange(int(st.numE), st.k)),
			ActiveL: st.activeL,
		}
		st.chooseDirections(&it)
		var newHubs, al int64
		g := 0
		for {
			st.curAttempt = attempt
			var stepErrs [numSteps]error
			var failMask uint64
			for ; g < numSteps; g++ {
				st.curStep = g
				if faulty {
					st.snapshot(&snaps[g])
				}
				if err := st.runStep(g, it.Directions, &newHubs, &al); err != nil {
					stepErrs[g] = err
					failMask |= 1 << uint(g)
				}
			}
			if !faulty {
				break // a reliable world's collectives cannot fail
			}
			// Agreement: which steps failed anywhere, and did anyone die?
			gmask, dead := st.vote(failMask, stepErrs[:]...)
			if len(dead) > 0 {
				return itrace, &deadWorldError{dead: dead}
			}
			if gmask == 0 {
				attempt = 0
				break
			}
			attempt++
			st.retries++
			if attempt > st.e.Opt.MaxRetries {
				err := firstErr(stepErrs[:])
				if err == nil {
					err = errRemoteRank
				}
				st.recovery += time.Since(attemptStart)
				return itrace, fmt.Errorf("core: iteration %d still failing after %d retries: %w: %w",
					iter, st.e.Opt.MaxRetries, ErrNoConvergence, err)
			}
			// Re-enter at the lowest step any rank failed: steps below it
			// completed cleanly on every rank, so their work stands. Every
			// rank restores the same step's snapshot, keeping the collective
			// schedule from there identical.
			g = bits.TrailingZeros64(gmask)
			st.restore(&snaps[g])
			if st.tr != nil {
				st.tr.Emit(trace.Span{Kind: trace.KindRecovery, Iter: st.curIter,
					Step: g, Attempt: attempt, Name: "retry", Start: st.tr.Now(),
					Args: map[string]int64{"step_mask": int64(gmask)}})
			}
			time.Sleep(st.e.Opt.RetryBackoff << uint(attempt-1))
			st.recovery += time.Since(attemptStart)
			attemptStart = time.Now()
		}
		st.curStep = -1

		itrace = append(itrace, it)
		st.activeL = al
		st.visitL += al
		if newHubs+al == 0 {
			converged = true
			break
		}
		if st.writer != nil && iter%st.e.Opt.CheckpointEvery == 0 {
			st.capture(int64(iter), false)
		}
	}
	if !converged {
		return itrace, fmt.Errorf("core: frontier still active after %d iterations: %w",
			st.e.Opt.MaxIterations, ErrNoConvergence)
	}

	// Delayed reduction of the delegated parent array (Section 5): one
	// world-wide max-reduce after the run instead of per-iteration traffic.
	// The reduction is idempotent (element-wise max over monotone parents),
	// so under faults it retries with the same vote protocol as iterations.
	// A fail-stop here still aborts to the engine, which replays the final
	// iteration from checkpoint and reduces under the new world.
	st.r.SetTag(TagReduce)
	for attempt := 0; ; attempt++ {
		t0 := time.Now()
		st.curAttempt = attempt
		// Same rollback discipline as the step retry loop: a re-executed
		// reduction re-observes PhaseReduce, so the failed attempt's
		// observation must not stay in the aggregates.
		var recSnap stats.Recorder
		if faulty {
			recSnap = *st.rec
		}
		err := st.reduceParents()
		if !faulty {
			return itrace, err
		}
		var bad uint64
		if err != nil {
			bad = 1
		}
		gmask, dead := st.vote(bad, err)
		if len(dead) > 0 {
			return itrace, &deadWorldError{dead: dead}
		}
		if gmask == 0 {
			return itrace, nil
		}
		st.retries++
		if attempt >= st.e.Opt.MaxRetries {
			st.recovery += time.Since(t0)
			if err == nil {
				err = errRemoteRank
			}
			return itrace, fmt.Errorf("core: parent reduction still failing after %d retries: %w: %w",
				st.e.Opt.MaxRetries, ErrNoConvergence, err)
		}
		*st.rec = recSnap
		if st.tr != nil {
			st.tr.Emit(trace.Span{Kind: trace.KindRecovery, Iter: st.curIter,
				Step: -1, Attempt: attempt, Name: "retry_reduce", Start: st.tr.Now()})
		}
		time.Sleep(st.e.Opt.RetryBackoff << uint(attempt))
		st.recovery += time.Since(t0)
	}
}

// reduceParents max-reduces the delegated parent array across all ranks.
func (st *rankState) reduceParents() error {
	t0 := time.Now()
	var s0 int64
	if st.tr != nil {
		s0 = st.tr.Now()
	}
	base := st.r.Stats
	var err error
	if len(st.parentHub) > 0 {
		err = comm.AllreduceMaxInt64(st.r.World, st.parentHub)
	}
	delta := st.r.Stats.Delta(&base)
	st.rec.Observe(stats.PhaseReduce, stats.DirNone, time.Since(t0), delta, 0)
	if st.tr != nil {
		intra, inter := delta.Totals()
		sp := trace.Span{Kind: trace.KindReduce, Epoch: st.r.Epoch(),
			Iter: st.curIter, Step: st.curStep, Attempt: st.curAttempt,
			Name: "reduce_parents", Start: s0, Dur: st.tr.Now() - s0,
			IntraBytes: intra, InterBytes: inter}
		if err != nil {
			sp.Err = 1
		}
		st.tr.Emit(sp)
	}
	return err
}

// runStep executes one of the iteration's four steps. Kernels run in
// hub-first order, syncing delegated hub state after each group of
// hub-activating kernels so later sub-iterations see the latest visited sets
// (Section 4.2). Skipped sub-iterations are elided entirely — including their
// collectives, which is safe because the skip decision derives from globally
// consistent counts. A collective error inside one kernel does NOT
// short-circuit the step: detection is symmetric only within the failing
// communicator (one column's alltoallv can fail while the others succeed), so
// every rank must keep executing the identical per-communicator collective
// schedule to stay in rendezvous lockstep. The first error is collected and
// resolved globally by the caller's control-plane vote.
func (st *rankState) runStep(g int, dirs [partition.NumComponents]stats.Direction, newHubs, al *int64) error {
	var firstErr error
	run := func(c partition.Component, push, pull func() (int64, error)) {
		st.r.SetTag(int(c))
		d := dirs[c]
		if d == stats.DirSkip {
			st.rec.Observe(stats.PhaseOfComponent(c), d, 0, comm.VolumeStats{}, 0)
			if st.tr != nil {
				st.tr.Emit(trace.Span{Kind: trace.KindKernel, Epoch: st.r.Epoch(),
					Iter: st.curIter, Step: st.curStep, Attempt: st.curAttempt,
					Tag: int(c), Name: c.String(), Dir: "skip", Start: st.tr.Now()})
			}
			return
		}
		err := st.observe(c, d, func() (int64, error) {
			if d == stats.DirPush {
				return push()
			}
			return pull()
		})
		if firstErr == nil {
			firstErr = err
		}
	}
	switch g {
	case 0:
		// EH2EH (hub -> hub), then sync.
		ehPull := st.ehPull
		if st.e.Opt.Segmented {
			ehPull = st.ehPullSegmented
		}
		run(partition.CompEH2EH, st.ehPush, ehPull)
		if err := st.syncHubs(); firstErr == nil {
			firstErr = err
		}
	case 1:
		// E2L and H2L (hub -> L), then L2E and L2H (L -> hub), then sync.
		// A retry re-enters here with a stale batch buffer from the failed
		// attempt; the re-executed kernels regenerate every update.
		st.pendRow = st.pendRow[:0]
		run(partition.CompE2L, st.e2lPush, st.e2lPull)
		run(partition.CompH2L, st.h2lPush, st.h2lPull)
		run(partition.CompL2E, st.l2ePush, st.l2ePull)
		run(partition.CompL2H, st.l2hPush, st.l2hPull)
		if err := st.syncHubs(); firstErr == nil {
			firstErr = err
		}
	case 2:
		run(partition.CompL2L, st.l2lPush, st.l2lPull)
	case 3:
		// Epilogue: advance frontiers and agree on the global L count.
		st.r.SetTag(TagEpilogue)
		st.hubFrontier.CopyFrom(st.hubIter)
		st.hubIter.Reset()
		st.lFrontier.CopyFrom(st.lNew)
		st.lVisited.Or(st.lNew)
		st.lNew.Reset()
		if st.e.Opt.ImmediateParentReduction {
			// The traditional scheme: reconcile delegate parents every
			// iteration. Correctness-neutral but pays a world-wide K-element
			// reduce per iteration — the traffic the paper's delayed
			// reduction eliminates.
			st.r.SetTag(TagReduce)
			if err := st.reduceParents(); firstErr == nil {
				firstErr = err
			}
			st.r.SetTag(TagEpilogue)
		}
		*newHubs = int64(st.hubFrontier.Count())
		// One pair-allreduce agrees on the global active-L count and the
		// iteration's observed data-plane bytes (the recorder delta since
		// iteration start, i.e. kernel + sync + reduce traffic; the epilogue
		// collective itself is not recorder-observed). The byte total feeds
		// the next iteration's dense-vs-sparse choice; summing it globally
		// keeps the choice identical on every rank. Committed only on
		// success, so a retried epilogue cannot leave ranks disagreeing.
		iterBytes := commBytes(st.rec) - st.iterBytesBase
		sums, err := comm.AllreduceSumInt64s(st.r.World,
			[]int64{int64(st.lFrontier.Count()), iterBytes})
		if firstErr == nil {
			firstErr = err
		}
		if err == nil {
			*al = sums[0]
			st.lastIterBytes = sums[1]
		}
	}
	return firstErr
}

// observe times a kernel and attributes its traffic delta and edge touches.
func (st *rankState) observe(c partition.Component, d stats.Direction, fn func() (int64, error)) error {
	t0 := time.Now()
	var s0 int64
	if st.tr != nil {
		s0 = st.tr.Now()
	}
	base := st.r.Stats
	edges, err := fn()
	delta := st.r.Stats.Delta(&base)
	st.rec.Observe(stats.PhaseOfComponent(c), d, time.Since(t0), delta, edges)
	if st.tr != nil {
		intra, inter := delta.Totals()
		sp := trace.Span{Kind: trace.KindKernel, Epoch: st.r.Epoch(),
			Iter: st.curIter, Step: st.curStep, Attempt: st.curAttempt,
			Tag: int(c), Name: c.String(), Dir: d.String(),
			Start: s0, Dur: st.tr.Now() - s0, Edges: edges,
			IntraBytes: intra, InterBytes: inter}
		if err != nil {
			sp.Err = 1
		}
		st.tr.Emit(sp)
	}
	return err
}

// syncHubs merges local hub activations globally: allreduce-OR down the
// column then across the row reproduces the paper's delegation traffic
// pattern (E and H state moves only on column and row links), after which
// hubNew's contents are globally agreed and folded into visited state.
func (st *rankState) syncHubs() error {
	t0 := time.Now()
	var s0 int64
	if st.tr != nil {
		s0 = st.tr.Now()
	}
	base := st.r.Stats
	words := st.hubNew.Words()
	var err error
	if len(words) > 0 {
		// Both allreduces always run — even after the column one fails — so
		// the row communicator's collective schedule matches on every rank.
		err = comm.AllreduceOr(st.r.ColC, words)
		if e2 := comm.AllreduceOr(st.r.RowC, words); err == nil {
			err = e2
		}
	}
	// hubNew now holds the union of all ranks' new activations (it may
	// include hubs another rank also activated; visited filtering below is
	// idempotent).
	st.hubNew.AndNot(st.hubVisited)
	st.hubIter.Or(st.hubNew)
	st.hubVisited.Or(st.hubNew)
	st.hubNew.Reset()
	delta := st.r.Stats.Delta(&base)
	st.rec.Observe(stats.PhaseOther, stats.DirNone, time.Since(t0), delta, 0)
	if st.tr != nil {
		intra, inter := delta.Totals()
		sp := trace.Span{Kind: trace.KindSync, Epoch: st.r.Epoch(),
			Iter: st.curIter, Step: st.curStep, Attempt: st.curAttempt,
			Name: "hub_sync", Start: s0, Dur: st.tr.Now() - s0,
			IntraBytes: intra, InterBytes: inter}
		if err != nil {
			sp.Err = 1
		}
		st.tr.Emit(sp)
	}
	return err
}

// writeParents assembles this rank's share of the global parent array:
// its owned L vertices plus the hub vertices whose original IDs it owns
// (hub parents are identical on all ranks after the delayed reduction).
func (st *rankState) writeParents(parent []int64) {
	layout := st.e.Part.Layout
	for i := 0; i < st.rg.LocalN; i++ {
		if st.parentL[i] >= 0 {
			parent[layout.GlobalOf(st.r.ID, int32(i))] = st.parentL[i]
		}
	}
	for h, orig := range st.e.Part.Hubs.Orig {
		if layout.Owner(orig) == st.r.ID && st.parentHub[h] >= 0 {
			parent[orig] = st.parentHub[h]
		}
	}
}
