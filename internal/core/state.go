package core

import (
	"fmt"
	"time"

	"repro/internal/bitmap"
	"repro/internal/comm"
	"repro/internal/partition"
	"repro/internal/stats"
)

// rankState is the per-rank BFS working set.
//
// Hub (E and H) state is delegated: every rank holds full hubFrontier and
// hubVisited bitmaps over the K hubs, kept coherent by column+row
// allreduce-OR after each hub-activating sub-iteration. hubNew accumulates
// this rank's not-yet-synchronized activations; hubIter accumulates all hubs
// activated in the current iteration (the next hub frontier). L state is
// owner-local only.
type rankState struct {
	e   *Engine
	r   *comm.Rank
	rg  *partition.RankGraph
	rec *stats.Recorder

	k          int // hub count
	numE, numL int64

	hubFrontier *bitmap.Bitmap // replicated: current sources
	hubVisited  *bitmap.Bitmap // replicated: visited as of last sync
	hubNew      *bitmap.Bitmap // local activations since last sync
	hubIter     *bitmap.Bitmap // all activations this iteration (synced)
	parentHub   []int64        // local delegate parent array, reduced at the end

	lFrontier *bitmap.Bitmap // owner-local: current L sources
	lVisited  *bitmap.Bitmap
	lNew      *bitmap.Bitmap
	parentL   []int64

	// scratch buffers reused across iterations
	rowFrontier   *bitmap.Bitmap // row-wide L frontier for L2H pull
	worldFrontier *bitmap.Bitmap // world-wide L frontier for L2L pull

	// cached active counts, recomputed after each hub sync / L update
	activeL int64
	visitL  int64

	// resilience bookkeeping (only exercised under a fault transport)
	retries  int64
	recovery time.Duration
}

// iterSnapshot captures the state an iteration needs to be re-executed after
// a collective failure: every frontier/visited bitmap plus the cached global
// counts. The parent arrays are deliberately NOT captured — parent updates are
// monotone (a slot is written at most once per discovery, always with a valid
// BFS parent at the discovering level), so any write a failed attempt left
// behind is either re-performed identically by the retry or is already a
// correct parent for that vertex.
type iterSnapshot struct {
	hubFrontier, hubVisited, hubNew, hubIter []uint64
	lFrontier, lVisited, lNew                []uint64
	activeL, visitL                          int64
}

func snapWords(dst *[]uint64, src *bitmap.Bitmap) {
	w := src.Words()
	if cap(*dst) < len(w) {
		*dst = make([]uint64, len(w))
	}
	*dst = (*dst)[:len(w)]
	copy(*dst, w)
}

func (st *rankState) snapshot(s *iterSnapshot) {
	snapWords(&s.hubFrontier, st.hubFrontier)
	snapWords(&s.hubVisited, st.hubVisited)
	snapWords(&s.hubNew, st.hubNew)
	snapWords(&s.hubIter, st.hubIter)
	snapWords(&s.lFrontier, st.lFrontier)
	snapWords(&s.lVisited, st.lVisited)
	snapWords(&s.lNew, st.lNew)
	s.activeL = st.activeL
	s.visitL = st.visitL
}

func (st *rankState) restore(s *iterSnapshot) {
	copy(st.hubFrontier.Words(), s.hubFrontier)
	copy(st.hubVisited.Words(), s.hubVisited)
	copy(st.hubNew.Words(), s.hubNew)
	copy(st.hubIter.Words(), s.hubIter)
	copy(st.lFrontier.Words(), s.lFrontier)
	copy(st.lVisited.Words(), s.lVisited)
	copy(st.lNew.Words(), s.lNew)
	st.activeL = s.activeL
	st.visitL = s.visitL
}

func newRankState(e *Engine, r *comm.Rank) *rankState {
	per := int(e.Part.Layout.PerRank)
	k := e.Part.Hubs.K()
	st := &rankState{
		e:           e,
		r:           r,
		rg:          e.Part.Ranks[r.ID],
		rec:         &stats.Recorder{},
		k:           k,
		numE:        int64(e.Part.Hubs.NumE),
		numL:        e.Part.Layout.N - int64(k),
		hubFrontier: bitmap.New(k),
		hubVisited:  bitmap.New(k),
		hubNew:      bitmap.New(k),
		hubIter:     bitmap.New(k),
		parentHub:   make([]int64, k),
		lFrontier:   bitmap.New(per),
		lVisited:    bitmap.New(per),
		lNew:        bitmap.New(per),
		parentL:     make([]int64, per),
	}
	for i := range st.parentHub {
		st.parentHub[i] = -1
	}
	for i := range st.parentL {
		st.parentL[i] = -1
	}
	return st
}

// bfs runs the main loop and returns the iteration trace. All ranks execute
// it in lockstep; every collective below is reached by every rank in the
// same order (direction choices derive from globally consistent state).
//
// Under a fault transport the loop becomes a retry loop: each iteration is
// snapshotted before execution, every collective error is collected without
// breaking the collective schedule, and at the iteration boundary all ranks
// vote over the reliable control plane on whether anyone failed. A failed
// vote restores the snapshot on every rank and re-executes the iteration
// after an exponential backoff — idempotent because visited/parent updates
// are monotone. MaxRetries consecutive failures (or MaxIterations without an
// empty frontier) abort with ErrNoConvergence.
func (st *rankState) bfs(root int64) ([]IterTrace, error) {
	layout := st.e.Part.Layout
	hubs := st.e.Part.Hubs
	if h, ok := hubs.HubOf(root); ok {
		st.hubFrontier.Set(int(h))
		st.hubVisited.Set(int(h))
		st.parentHub[h] = root
	} else if layout.Owner(root) == st.r.ID {
		li := layout.LocalIdx(root)
		st.lFrontier.Set(int(li))
		st.lVisited.Set(int(li))
		st.parentL[li] = root
		st.activeL = 1
		st.visitL = 1
	}
	// Global L counts for direction decisions. Bootstrap rides the control
	// plane: there is no prior consistent state to retry from.
	st.activeL = comm.ControlSumInt64(st.r.World, st.activeL)
	st.visitL = comm.ControlSumInt64(st.r.World, st.visitL)

	faulty := st.r.Faulty()
	var snap iterSnapshot
	var trace []IterTrace
	attempt := 0
	converged := false
	for iter := 0; iter < st.e.Opt.MaxIterations; iter++ {
		iterStart := time.Now()
		if faulty {
			st.snapshot(&snap)
		}
		it := IterTrace{
			ActiveE: int64(st.hubFrontier.CountRange(0, int(st.numE))),
			ActiveH: int64(st.hubFrontier.CountRange(int(st.numE), st.k)),
			ActiveL: st.activeL,
		}
		it.Directions = st.chooseDirections(it)
		err := st.runIteration(it.Directions)

		// Advance frontiers. Hub side: hubIter was synced incrementally.
		st.hubFrontier.CopyFrom(st.hubIter)
		st.hubIter.Reset()
		// L side: owner-local swap.
		st.lFrontier.CopyFrom(st.lNew)
		st.lVisited.Or(st.lNew)
		st.lNew.Reset()

		if st.e.Opt.ImmediateParentReduction {
			// The traditional scheme: reconcile delegate parents every
			// iteration. Correctness-neutral but pays a world-wide
			// K-element reduce per iteration — the traffic the paper's
			// delayed reduction eliminates.
			if e2 := st.reduceParents(); err == nil {
				err = e2
			}
		}

		newHubs := int64(st.hubFrontier.Count())
		al, e2 := comm.AllreduceSumInt64(st.r.World, int64(st.lFrontier.Count()))
		if err == nil {
			err = e2
		}

		if faulty {
			// Agreement: did any rank see a collective error this iteration?
			var bad int64
			if err != nil {
				bad = 1
			}
			if comm.ControlSumInt64(st.r.World, bad) > 0 {
				attempt++
				st.retries++
				if attempt > st.e.Opt.MaxRetries {
					st.recovery += time.Since(iterStart)
					if err == nil {
						err = errRemoteRank
					}
					return trace, fmt.Errorf("core: iteration %d still failing after %d retries: %w: %w",
						iter, st.e.Opt.MaxRetries, ErrNoConvergence, err)
				}
				st.restore(&snap)
				backoff := st.e.Opt.RetryBackoff << uint(attempt-1)
				time.Sleep(backoff)
				st.recovery += time.Since(iterStart)
				iter--
				continue
			}
			attempt = 0
		}

		trace = append(trace, it)
		st.activeL = al
		st.visitL += al
		if newHubs+al == 0 {
			converged = true
			break
		}
	}
	if !converged {
		return trace, fmt.Errorf("core: frontier still active after %d iterations: %w",
			st.e.Opt.MaxIterations, ErrNoConvergence)
	}

	// Delayed reduction of the delegated parent array (Section 5): one
	// world-wide max-reduce after the run instead of per-iteration traffic.
	// The reduction is idempotent (element-wise max over monotone parents),
	// so under faults it retries with the same vote protocol as iterations.
	for attempt := 0; ; attempt++ {
		t0 := time.Now()
		err := st.reduceParents()
		if !faulty {
			return trace, err
		}
		var bad int64
		if err != nil {
			bad = 1
		}
		if comm.ControlSumInt64(st.r.World, bad) == 0 {
			return trace, nil
		}
		st.retries++
		if attempt >= st.e.Opt.MaxRetries {
			st.recovery += time.Since(t0)
			if err == nil {
				err = errRemoteRank
			}
			return trace, fmt.Errorf("core: parent reduction still failing after %d retries: %w: %w",
				st.e.Opt.MaxRetries, ErrNoConvergence, err)
		}
		time.Sleep(st.e.Opt.RetryBackoff << uint(attempt))
		st.recovery += time.Since(t0)
	}
}

// reduceParents max-reduces the delegated parent array across all ranks.
func (st *rankState) reduceParents() error {
	t0 := time.Now()
	base := st.r.Stats
	var err error
	if len(st.parentHub) > 0 {
		err = comm.AllreduceMaxInt64(st.r.World, st.parentHub)
	}
	st.rec.Observe(stats.PhaseReduce, stats.DirNone, time.Since(t0), st.r.Stats.Delta(&base), 0)
	return err
}

// runIteration executes the six sub-iterations in hub-first order, syncing
// delegated hub state after each group of hub-activating kernels so later
// sub-iterations see the latest visited sets (Section 4.2). Skipped
// sub-iterations are elided entirely — including their collectives, which is
// safe because the skip decision derives from globally consistent counts.
// A collective error inside one kernel does NOT short-circuit the iteration:
// detection is symmetric only within the failing communicator (one column's
// alltoallv can fail while the others succeed), so every rank must keep
// executing the identical per-communicator collective schedule to stay in
// rendezvous lockstep. The first error is collected and resolved globally by
// the caller's control-plane vote at the iteration boundary.
func (st *rankState) runIteration(dirs [partition.NumComponents]stats.Direction) error {
	var firstErr error
	run := func(c partition.Component, push, pull func() (int64, error)) {
		d := dirs[c]
		if d == stats.DirSkip {
			st.rec.Observe(stats.PhaseOfComponent(c), d, 0, comm.VolumeStats{}, 0)
			return
		}
		err := st.observe(c, d, func() (int64, error) {
			if d == stats.DirPush {
				return push()
			}
			return pull()
		})
		if firstErr == nil {
			firstErr = err
		}
	}
	// 1. EH2EH (hub -> hub).
	ehPull := st.ehPull
	if st.e.Opt.Segmented {
		ehPull = st.ehPullSegmented
	}
	run(partition.CompEH2EH, st.ehPush, ehPull)
	if err := st.syncHubs(); firstErr == nil {
		firstErr = err
	}

	// 2. E2L and H2L (hub -> L).
	run(partition.CompE2L, st.e2lPush, st.e2lPull)
	run(partition.CompH2L, st.h2lPush, st.h2lPull)

	// 3. L2E and L2H (L -> hub).
	run(partition.CompL2E, st.l2ePush, st.l2ePull)
	run(partition.CompL2H, st.l2hPush, st.l2hPull)
	if err := st.syncHubs(); firstErr == nil {
		firstErr = err
	}

	// 4. L2L.
	run(partition.CompL2L, st.l2lPush, st.l2lPull)
	return firstErr
}

// observe times a kernel and attributes its traffic delta and edge touches.
func (st *rankState) observe(c partition.Component, d stats.Direction, fn func() (int64, error)) error {
	t0 := time.Now()
	base := st.r.Stats
	edges, err := fn()
	st.rec.Observe(stats.PhaseOfComponent(c), d, time.Since(t0), st.r.Stats.Delta(&base), edges)
	return err
}

// syncHubs merges local hub activations globally: allreduce-OR down the
// column then across the row reproduces the paper's delegation traffic
// pattern (E and H state moves only on column and row links), after which
// hubNew's contents are globally agreed and folded into visited state.
func (st *rankState) syncHubs() error {
	t0 := time.Now()
	base := st.r.Stats
	words := st.hubNew.Words()
	var err error
	if len(words) > 0 {
		// Both allreduces always run — even after the column one fails — so
		// the row communicator's collective schedule matches on every rank.
		err = comm.AllreduceOr(st.r.ColC, words)
		if e2 := comm.AllreduceOr(st.r.RowC, words); err == nil {
			err = e2
		}
	}
	// hubNew now holds the union of all ranks' new activations (it may
	// include hubs another rank also activated; visited filtering below is
	// idempotent).
	st.hubNew.AndNot(st.hubVisited)
	st.hubIter.Or(st.hubNew)
	st.hubVisited.Or(st.hubNew)
	st.hubNew.Reset()
	st.rec.Observe(stats.PhaseOther, stats.DirNone, time.Since(t0), st.r.Stats.Delta(&base), 0)
	return err
}

// writeParents assembles this rank's share of the global parent array:
// its owned L vertices plus the hub vertices whose original IDs it owns
// (hub parents are identical on all ranks after the delayed reduction).
func (st *rankState) writeParents(parent []int64) {
	layout := st.e.Part.Layout
	for i := 0; i < st.rg.LocalN; i++ {
		if st.parentL[i] >= 0 {
			parent[layout.GlobalOf(st.r.ID, int32(i))] = st.parentL[i]
		}
	}
	for h, orig := range st.e.Part.Hubs.Orig {
		if layout.Owner(orig) == st.r.ID && st.parentHub[h] >= 0 {
			parent[orig] = st.parentHub[h]
		}
	}
}
