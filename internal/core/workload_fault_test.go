package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/faultinject"
	"repro/internal/partition"
	"repro/internal/rmat"
	"repro/internal/topology"
)

// runNamedWorkload dispatches one of the ported workloads by name with fixed
// per-workload parameters (k=2 cores, weight seed 9, default delta) so the
// fault tests can sweep workloads uniformly.
func runNamedWorkload(eng *Engine, wl string, root int64) (*WorkloadResult, error) {
	switch wl {
	case "wcc":
		return eng.RunWCC()
	case "kcore":
		return eng.RunKCore(2)
	case "sssp":
		return eng.RunSSSP(root, 9, 0)
	}
	panic("unknown workload " + wl)
}

// compareWorkloadResults demands the workload-specific output arrays agree
// bit for bit — the retry and recovery machinery must be invisible in the
// result.
func compareWorkloadResults(t *testing.T, label string, got, want *WorkloadResult) {
	t.Helper()
	switch want.Workload {
	case "wcc":
		for v := range want.Label {
			if got.Label[v] != want.Label[v] {
				t.Fatalf("%s: label[%d] = %d, fault-free %d", label, v, got.Label[v], want.Label[v])
			}
		}
		if got.Components != want.Components {
			t.Fatalf("%s: components = %d, fault-free %d", label, got.Components, want.Components)
		}
	case "kcore":
		for v := range want.InCore {
			if got.InCore[v] != want.InCore[v] {
				t.Fatalf("%s: inCore[%d] = %v, fault-free %v", label, v, got.InCore[v], want.InCore[v])
			}
		}
	case "sssp":
		for v := range want.Dist {
			if got.Dist[v] != want.Dist[v] || got.Parent[v] != want.Parent[v] {
				t.Fatalf("%s: vertex %d (%g,%d), fault-free (%g,%d)",
					label, v, got.Dist[v], got.Parent[v], want.Dist[v], want.Parent[v])
			}
		}
	default:
		t.Fatalf("unknown workload %q", want.Workload)
	}
}

func workloadSparseCalls(res *WorkloadResult) int64 {
	return res.Recorder.CommBreakdown().Calls[comm.KindAllgatherSparse]
}

func workloadSparseIterFraction(trs []IterTrace) float64 {
	if len(trs) == 0 {
		return 0
	}
	sparse := 0
	for _, it := range trs {
		if anySparse(it) {
			sparse++
		}
	}
	return float64(sparse) / float64(len(trs))
}

// TestWorkloadChaosMatrix sweeps every injectable fault kind across every
// mesh shape for each ported workload. Each faulted run must record injected
// faults and retries, and its output must be bit-identical to the fault-free
// run of the same workload on the same partition.
func TestWorkloadChaosMatrix(t *testing.T) {
	cfg := rmat.Config{Scale: 8, Seed: 13}
	n, edges := cfg.NumVertices(), rmat.Generate(cfg)
	meshes := []topology.Mesh{
		{Rows: 2, Cols: 2}, {Rows: 1, Cols: 4}, {Rows: 4, Cols: 1}, {Rows: 2, Cols: 3},
	}
	kinds := []struct {
		name   string
		mutate func(p *faultinject.Plan, o *Options)
	}{
		{"delay-deadline", func(p *faultinject.Plan, o *Options) {
			p.DelayProb = 0.05
			o.CollectiveDeadline = 120 * time.Microsecond
		}},
		{"fail", func(p *faultinject.Plan, o *Options) { p.FailProb = 0.01 }},
		{"corrupt", func(p *faultinject.Plan, o *Options) { p.CorruptProb = 0.02 }},
		{"stall-window", func(p *faultinject.Plan, o *Options) {
			p.StallRank = 1
			p.StallStart = 2
			p.StallLen = 3
		}},
	}
	workloads := []string{"wcc", "kcore", "sssp"}
	for mi, mesh := range meshes {
		mesh := mesh
		base := Options{Mesh: mesh, Thresholds: partition.Thresholds{E: 64, H: 8}}
		ref, err := NewEngine(n, edges, base)
		if err != nil {
			t.Fatal(err)
		}
		// k-core needs a long peeling schedule for the probabilistic plans to
		// land faults: on R-MAT the 2-core settles in a handful of rounds, so
		// kcore runs the matrix on a path, whose ends peel two per iteration.
		kcoreRef, err := NewEngine(512, pathEdges(512), base)
		if err != nil {
			t.Fatal(err)
		}
		root := firstConnectedRootOf(ref)
		engineFor := func(wl string) *Engine {
			if wl == "kcore" {
				return kcoreRef
			}
			return ref
		}
		want := map[string]*WorkloadResult{}
		for _, wl := range workloads {
			res, err := runNamedWorkload(engineFor(wl), wl, root)
			if err != nil {
				t.Fatalf("fault-free %s on %dx%d: %v", wl, mesh.Rows, mesh.Cols, err)
			}
			want[wl] = res
		}
		for wi, wl := range workloads {
			for ki, k := range kinds {
				wl, k := wl, k
				seed := uint64(9100 + 97*mi + 13*wi + ki)
				name := fmt.Sprintf("%s/%dx%d/%s", wl, mesh.Rows, mesh.Cols, k.name)
				t.Run(name, func(t *testing.T) {
					if testing.Short() && (mi+wi+ki)%3 != 0 {
						t.Skip("subset in -short mode")
					}
					t.Parallel()
					plan := faultinject.New(seed)
					opt := base
					opt.Transport = plan
					opt.MaxRetries = 12
					opt.RetryBackoff = 50 * time.Microsecond
					k.mutate(plan, &opt)
					eng, err := NewEngineFromPartition(engineFor(wl).Part, opt)
					if err != nil {
						t.Fatal(err)
					}
					res, err := runNamedWorkload(eng, wl, root)
					if err != nil {
						t.Fatalf("%s under %s: %v", wl, k.name, err)
					}
					if res.Faults.Injected() == 0 {
						t.Fatalf("%s plan injected nothing; pick a different seed", k.name)
					}
					if res.Retries == 0 {
						t.Fatalf("%s was injected but never forced a retry", k.name)
					}
					compareWorkloadResults(t, name, res, want[wl])
				})
			}
		}
	}
}

// TestWorkloadKillRecoverySparseTail kills a rank deep in the sparse tail of
// each ported workload and recovers from the newest complete checkpoint. The
// replayed tail must ride the sparse exchange again and the final output must
// be bit-identical to a fault-free forced-dense run — the BFS kill-recovery
// acceptance, per workload.
func TestWorkloadKillRecoverySparseTail(t *testing.T) {
	const n = 256
	edges := pathEdges(n)
	cases := []struct {
		wl       string
		killIter int64
	}{
		{"wcc", 100},
		{"kcore", 50},
		{"sssp", 100},
	}
	base := Options{
		Mesh:       topology.Mesh{Rows: 2, Cols: 2},
		Thresholds: partition.Thresholds{E: 256, H: 32},
	}
	denseOpt := base
	denseOpt.SparseTail = SparseOff
	dense, err := NewEngine(n, edges, denseOpt)
	if err != nil {
		t.Fatal(err)
	}
	for ci, tc := range cases {
		ci, tc := ci, tc
		t.Run(tc.wl, func(t *testing.T) {
			dres, err := runNamedWorkload(dense, tc.wl, 0)
			if err != nil {
				t.Fatalf("fault-free dense %s: %v", tc.wl, err)
			}
			if int64(dres.Iterations) <= tc.killIter+2 {
				t.Fatalf("%s converged in %d iterations; kill@%d would not fire", tc.wl, dres.Iterations, tc.killIter)
			}
			sparseEng, err := NewEngineFromPartition(dense.Part, base) // SparseAuto default
			if err != nil {
				t.Fatal(err)
			}
			sres, err := runNamedWorkload(sparseEng, tc.wl, 0)
			if err != nil {
				t.Fatalf("fault-free sparse %s: %v", tc.wl, err)
			}
			compareWorkloadResults(t, tc.wl+"/fault-free-sparse", sres, dres)
			if workloadSparseCalls(sres) == 0 {
				t.Fatalf("fault-free %s tail never went sparse", tc.wl)
			}

			mode := RecoverShrink
			if ci%2 == 1 {
				mode = RecoverRestore
			}
			opt := base
			opt.Transport = &chaosTransport{kills: []*killCall{{rank: 3, iter: tc.killIter, tag: 0}}}
			opt.CheckpointDir = t.TempDir()
			opt.Recovery = mode
			eng, err := NewEngineFromPartition(dense.Part, opt)
			if err != nil {
				t.Fatal(err)
			}
			res, err := runNamedWorkload(eng, tc.wl, 0)
			if err != nil {
				t.Fatalf("recovered %s run failed: %v", tc.wl, err)
			}
			if res.Recovery.Epochs != 1 || res.Recovery.RanksLost != 1 {
				t.Fatalf("recovery %+v: want 1 epoch, 1 rank lost", res.Recovery)
			}
			if res.Faults.Kills != 1 {
				t.Fatalf("kills = %d, want 1", res.Faults.Kills)
			}
			// The checkpoint must carry the run back near the kill, not restart
			// the workload from scratch.
			if res.Recovery.LastResumeIter < tc.killIter-2 {
				t.Fatalf("resumed at iteration %d, want >= %d (tail checkpoint)",
					res.Recovery.LastResumeIter, tc.killIter-2)
			}
			if workloadSparseCalls(res) == 0 {
				t.Fatalf("recovered %s run never used the sparse exchange", tc.wl)
			}
			if frac := workloadSparseIterFraction(res.Trace); frac < 0.5 {
				t.Fatalf("only %.0f%% of recovered %s iterations went sparse", 100*frac, tc.wl)
			}
			compareWorkloadResults(t, tc.wl+"/"+mode.String(), res, dres)
			rec := res.Recovery
			t.Logf("%s/%s: resumed@%d replayed=%d restored=%dB recovery=%v",
				tc.wl, mode, rec.LastResumeIter, rec.IterationsReplayed, rec.BytesRestored, rec.RecoveryTime)
		})
	}
}
