package core

import (
	"errors"
	"fmt"
	"math/bits"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/trace"
)

// workload is one frontier-style kernel schedule run by the per-rank driver:
// BFS, connected components, k-core peeling, delta-stepping SSSP. A workload
// owns its vertex state (bitmaps, labels, distances) and its per-step kernel
// bodies; the driver owns everything the paper's engine shares across
// workloads — the four-step retryable iteration skeleton, the control-plane
// failure votes, checkpoint capture/replay, the sparse-tail feedback loop and
// the span/recorder plumbing. The contract mirrors the BFS loop exactly:
//
//   - bootstrap seeds a fresh run over the control plane (no prior state to
//     retry from).
//   - beginIter fills the IterTrace frontier composition and latches the
//     iteration's direction/sparse schedule; it runs once per iteration, so
//     retries of a failed iteration keep the same collective schedule.
//   - step executes one of the numSteps groups; every collective inside must
//     be reached by every rank in the same order, and a collective error must
//     not short-circuit the remaining per-communicator schedule.
//   - endIter commits the epilogue's pending global counts and reports
//     convergence; it runs only after all steps passed the vote.
//   - finalize is the post-loop reduction (the delayed parent reduce for BFS;
//     a no-op elsewhere). It must be idempotent: under faults it is retried
//     with the same vote protocol as iterations.
//   - snapshot/restore capture and roll back the workload state a retry of
//     step g needs; value updates that are not monotone across a failed
//     attempt MUST be included.
//   - ckpt exposes the state the checkpoint writer persists; loadState is its
//     inverse on replay.
type workload interface {
	drv() *driver
	bootstrap() error
	beginIter(it *IterTrace)
	step(g int, it *IterTrace) error
	endIter(it *IterTrace) bool
	finalize() error
	snapshot(g int)
	restore(g int)
	ckpt() ckptSlices
	loadState(cs *checkpoint.State)
}

// ckptSlices is a workload's checkpointable state in the writer's fixed
// geometry: four word slices, two int64 arrays, two scalar counters. A
// workload maps its own arrays onto these slots (BFS: frontiers + parents;
// WCC: dirty sets + labels; SSSP: dirty sets + packed distance/parent pairs).
type ckptSlices struct {
	hubF, hubV, lF, lV []uint64
	pHub, pL           []int64
	activeL, visitL    int64
}

// driver is the per-rank engine substrate shared by every workload. It is
// embedded by value in each workload's rank state, so kernels reach its
// fields (r, rg, sparse, pendRow, ...) via promotion.
type driver struct {
	e   *Engine
	r   *comm.Rank
	rg  *partition.RankGraph
	rec *stats.Recorder

	// tr is the rank's span stream (nil when tracing is off); curIter,
	// curStep and curAttempt are the coordinates stamped on emitted spans.
	tr         *trace.Stream
	curIter    int64
	curStep    int
	curAttempt int

	// maxIter bounds the iteration loop (BFS: Opt.MaxIterations; iterative
	// value-propagation workloads get a larger multiple — see newWorkloadDriver).
	maxIter int

	// Sparse-tail plumbing. sparse holds the iteration's per-component
	// dense-vs-sparse choices and batchRow whether the H2L and L2H payloads
	// ride one batched row exchange; both are set once per iteration, so
	// retries of the same iteration keep the same collective schedule.
	// lastIterBytes is the previous iteration's globally summed data-plane
	// bytes, fed back by the epilogue allreduce (-1 = unknown: the first
	// iteration, and the first after a checkpoint resume — identically on
	// every rank, which keeps the adaptive choice in lockstep). iterBytesBase
	// is the recorder's byte total at iteration start; pendRow buffers
	// batched updates between the H2L and L2H kernels.
	sparse        [partition.NumComponents]bool
	batchRow      bool
	lastIterBytes int64
	iterBytesBase int64
	pendRow       []comm.SparseUpdate

	// resilience bookkeeping (only exercised under a fault transport)
	retries  int64
	recovery time.Duration

	// recSnaps mirrors the workload's per-step snapshots for the stats
	// recorder: a retry re-enters mid-iteration and re-observes the
	// re-executed kernels, so the failed attempt's observations must roll
	// back with the state.
	recSnaps [numSteps]stats.Recorder

	// Fail-stop recovery plumbing, set by the engine before the loop runs.
	store       *checkpoint.Store    // nil when checkpointing is off
	scope       *checkpoint.RunScope // nil when checkpointing is off
	resumeIter  int64                // -2 fresh start; >= -1 replay the chain to here
	replaced    bool                 // slot died last epoch: reload the graph tier
	writer      *checkpoint.Writer
	resumeState *checkpoint.State // replayed state, seeds the writer's shadow
	replayDur   time.Duration     // wall clock spent replaying (engine takes the max)
}

func newDriver(e *Engine, r *comm.Rank, maxIter int) driver {
	return driver{
		e:             e,
		r:             r,
		rg:            e.Part.Ranks[r.ID],
		rec:           &stats.Recorder{},
		tr:            r.Trace(),
		curIter:       -1,
		curStep:       -1,
		maxIter:       maxIter,
		lastIterBytes: -1,
		resumeIter:    -2,
	}
}

// workloadIterScale multiplies Opt.MaxIterations for the iterative
// value-propagation workloads (WCC, k-core, SSSP): label propagation runs to
// the graph diameter, peeling can shave a long path two vertices per round,
// and delta-stepping visits one bucket per quiescent iteration — all far past
// a small-world BFS depth but still bounded.
const workloadIterScale = 32

func newWorkloadDriver(e *Engine, r *comm.Rank) driver {
	return newDriver(e, r, e.Opt.MaxIterations*workloadIterScale)
}

// commBytes is the recorder's total observed data-plane traffic; deltas of it
// across an iteration feed the sparse-tail byte ceiling.
func commBytes(rec *stats.Recorder) int64 {
	v := rec.CommBreakdown()
	return v.TotalBytes()
}

func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// reduceMaxParents max-reduces a replicated int64 array across all ranks —
// the delayed-reduction collective (BFS parents, and any workload-final
// replicated fold), observed as PhaseReduce.
func reduceMaxParents(d *driver, vals []int64) error {
	t0 := time.Now()
	var s0 int64
	if d.tr != nil {
		s0 = d.tr.Now()
	}
	base := d.r.Stats
	var err error
	if len(vals) > 0 {
		err = comm.AllreduceMaxInt64(d.r.World, vals)
	}
	delta := d.r.Stats.Delta(&base)
	d.rec.Observe(stats.PhaseReduce, stats.DirNone, time.Since(t0), delta, 0)
	if d.tr != nil {
		intra, inter := delta.Totals()
		sp := trace.Span{Kind: trace.KindReduce, Epoch: d.r.Epoch(),
			Iter: d.curIter, Step: d.curStep, Attempt: d.curAttempt,
			Name: "reduce_parents", Start: s0, Dur: d.tr.Now() - s0,
			IntraBytes: intra, InterBytes: inter}
		if err != nil {
			sp.Err = 1
		}
		d.tr.Emit(sp)
	}
	return err
}

// syncHubWords merges replicated hub words globally: allreduce-OR down the
// column then across the row reproduces the paper's delegation traffic
// pattern (E and H state moves only on column and row links). Both
// allreduces always run — even after the column one fails — so the row
// communicator's collective schedule matches on every rank. Observed as
// PhaseOther under the given span name.
func syncHubWords(d *driver, words []uint64, name string) error {
	t0 := time.Now()
	var s0 int64
	if d.tr != nil {
		s0 = d.tr.Now()
	}
	base := d.r.Stats
	var err error
	if len(words) > 0 {
		err = comm.AllreduceOr(d.r.ColC, words)
		if e2 := comm.AllreduceOr(d.r.RowC, words); err == nil {
			err = e2
		}
	}
	delta := d.r.Stats.Delta(&base)
	d.rec.Observe(stats.PhaseOther, stats.DirNone, time.Since(t0), delta, 0)
	if d.tr != nil {
		intra, inter := delta.Totals()
		sp := trace.Span{Kind: trace.KindSync, Epoch: d.r.Epoch(),
			Iter: d.curIter, Step: d.curStep, Attempt: d.curAttempt,
			Name: name, Start: s0, Dur: d.tr.Now() - s0,
			IntraBytes: intra, InterBytes: inter}
		if err != nil {
			sp.Err = 1
		}
		d.tr.Emit(sp)
	}
	return err
}

// snapInt64 copies src into a reusable snapshot buffer, mirroring snapWords
// for the workloads' value arrays (labels, degrees, packed distances).
func snapInt64(dst *[]int64, src []int64) {
	if cap(*dst) < len(src) {
		*dst = make([]int64, len(src))
	}
	*dst = (*dst)[:len(src)]
	copy(*dst, src)
}

// syncHubMinInt64 min-reduces a replicated int64 array with the delegation
// traffic pattern (column then row), via negated max-allreduces. Both
// collectives always run so every rank keeps the same per-communicator
// schedule under faults; a failed merge leaves locally negated-back values
// whose garbage the step retry's snapshot restore discards.
func syncHubMinInt64(d *driver, vals []int64, name string) error {
	t0 := time.Now()
	var s0 int64
	if d.tr != nil {
		s0 = d.tr.Now()
	}
	base := d.r.Stats
	var err error
	if len(vals) > 0 {
		for i := range vals {
			vals[i] = -vals[i]
		}
		err = comm.AllreduceMaxInt64(d.r.ColC, vals)
		if e2 := comm.AllreduceMaxInt64(d.r.RowC, vals); err == nil {
			err = e2
		}
		for i := range vals {
			vals[i] = -vals[i]
		}
	}
	delta := d.r.Stats.Delta(&base)
	d.rec.Observe(stats.PhaseOther, stats.DirNone, time.Since(t0), delta, 0)
	if d.tr != nil {
		intra, inter := delta.Totals()
		sp := trace.Span{Kind: trace.KindSync, Epoch: d.r.Epoch(),
			Iter: d.curIter, Step: d.curStep, Attempt: d.curAttempt,
			Name: name, Start: s0, Dur: d.tr.Now() - s0,
			IntraBytes: intra, InterBytes: inter}
		if err != nil {
			sp.Err = 1
		}
		d.tr.Emit(sp)
	}
	return err
}

// syncHubSumInt64 sum-reduces replicated per-hub partials (k-core's degree
// decrements) column-then-row: the two-stage sum over the mesh equals the
// world sum, in the delegation traffic pattern. Same always-both-collectives
// discipline as the other hub syncs.
func syncHubSumInt64(d *driver, vals []int64, name string) error {
	t0 := time.Now()
	var s0 int64
	if d.tr != nil {
		s0 = d.tr.Now()
	}
	base := d.r.Stats
	var err error
	if len(vals) > 0 {
		err = comm.AllreduceSumInt64Vec(d.r.ColC, vals)
		if e2 := comm.AllreduceSumInt64Vec(d.r.RowC, vals); err == nil {
			err = e2
		}
	}
	delta := d.r.Stats.Delta(&base)
	d.rec.Observe(stats.PhaseOther, stats.DirNone, time.Since(t0), delta, 0)
	if d.tr != nil {
		intra, inter := delta.Totals()
		sp := trace.Span{Kind: trace.KindSync, Epoch: d.r.Epoch(),
			Iter: d.curIter, Step: d.curStep, Attempt: d.curAttempt,
			Name: name, Start: s0, Dur: d.tr.Now() - s0,
			IntraBytes: intra, InterBytes: inter}
		if err != nil {
			sp.Err = 1
		}
		d.tr.Emit(sp)
	}
	return err
}

// vote is the retry-boundary agreement over the reliable control plane.
// Word 0 ORs every rank's failed-step mask; the remaining words OR a
// dead-rank bitmask assembled from typed collective errors plus the rank's
// own death latch — a dead rank keeps participating in control collectives,
// so the "zombie" acts as its own failure detector and no timeout is needed
// for unanimous detection. Returns the global step mask and the agreed
// dead-rank list.
func (d *driver) vote(stepMask uint64, errs ...error) (uint64, []int) {
	ranks := d.e.Opt.Ranks
	words := make([]uint64, 1+(ranks+63)/64)
	words[0] = stepMask
	for _, err := range errs {
		var ce *comm.CollectiveError
		if errors.As(err, &ce) && errors.Is(ce.Err, comm.ErrRankDead) {
			words[1+ce.Rank/64] |= 1 << uint(ce.Rank%64)
		}
	}
	if d.r.Dead() {
		words[1+d.r.ID/64] |= 1 << uint(d.r.ID%64)
	}
	agg := comm.ControlOrWords(d.r.World, words)
	var dead []int
	for i := 0; i < ranks; i++ {
		if agg[1+i/64]&(1<<uint(i%64)) != 0 {
			dead = append(dead, i)
		}
	}
	return agg[0], dead
}

// observe times a kernel and attributes its traffic delta and edge touches.
func (d *driver) observe(c partition.Component, dir stats.Direction, fn func() (int64, error)) error {
	t0 := time.Now()
	var s0 int64
	if d.tr != nil {
		s0 = d.tr.Now()
	}
	base := d.r.Stats
	edges, err := fn()
	delta := d.r.Stats.Delta(&base)
	d.rec.Observe(stats.PhaseOfComponent(c), dir, time.Since(t0), delta, edges)
	if d.tr != nil {
		intra, inter := delta.Totals()
		sp := trace.Span{Kind: trace.KindKernel, Epoch: d.r.Epoch(),
			Iter: d.curIter, Step: d.curStep, Attempt: d.curAttempt,
			Tag: int(c), Name: c.String(), Dir: dir.String(),
			Start: s0, Dur: d.tr.Now() - s0, Edges: edges,
			IntraBytes: intra, InterBytes: inter}
		if err != nil {
			sp.Err = 1
		}
		d.tr.Emit(sp)
	}
	return err
}

// runComp tags and runs one component kernel under the iteration's chosen
// direction, handling the skip bookkeeping — the shared body of every
// workload's step dispatcher.
func (d *driver) runComp(c partition.Component, dir stats.Direction, fn func() (int64, error)) error {
	d.r.SetTag(int(c))
	if dir == stats.DirSkip {
		d.rec.Observe(stats.PhaseOfComponent(c), dir, 0, comm.VolumeStats{}, 0)
		if d.tr != nil {
			d.tr.Emit(trace.Span{Kind: trace.KindKernel, Epoch: d.r.Epoch(),
				Iter: d.curIter, Step: d.curStep, Attempt: d.curAttempt,
				Tag: int(c), Name: c.String(), Dir: "skip", Start: d.tr.Now()})
		}
		return nil
	}
	return d.observe(c, dir, fn)
}

// chooseSchedule is the ported workloads' direction/sparse latch: every
// component pushes (value propagation has no profitable pull form for these
// workloads) or skips when its active-source proxy is empty, and the remote
// push components go sparse under the same cutoff + byte-feedback rule as
// BFS (see pickSparse). act[c] is the component's globally consistent
// active-source count; skipEmpty elides components with act[c] == 0;
// rowBatch allows the H2L+L2H batched row exchange (a workload whose L2H is
// a local delegation, like k-core, must pass false). All inputs are
// globally consistent, so every rank latches the identical schedule.
func (d *driver) chooseSchedule(it *IterTrace, act [partition.NumComponents]int64, skipEmpty, rowBatch bool) {
	var s0 int64
	if d.tr != nil {
		s0 = d.tr.Now()
	}
	for c := 0; c < int(partition.NumComponents); c++ {
		if skipEmpty && act[c] == 0 {
			it.Directions[c] = stats.DirSkip
		} else {
			it.Directions[c] = stats.DirPush
		}
	}
	mode := d.e.Opt.SparseTail
	eligible := func(c partition.Component) bool {
		if it.Directions[c] != stats.DirPush {
			return false
		}
		if mode == SparseOff {
			return false
		}
		if mode == SparseAlways {
			return true
		}
		return act[c] <= d.e.Opt.SparseCutoff &&
			(d.lastIterBytes < 0 || d.lastIterBytes <= d.e.Opt.SparseMaxBytes)
	}
	it.Sparse[partition.CompH2L] = eligible(partition.CompH2L)
	it.Sparse[partition.CompL2H] = rowBatch && eligible(partition.CompL2H)
	it.Sparse[partition.CompL2L] = eligible(partition.CompL2L)
	d.sparse = it.Sparse
	d.batchRow = rowBatch && it.Sparse[partition.CompH2L] && it.Sparse[partition.CompL2H]
	if d.tr != nil {
		args := map[string]int64{
			"active_e":   it.ActiveE,
			"active_h":   it.ActiveH,
			"active_l":   it.ActiveL,
			"last_bytes": d.lastIterBytes,
		}
		for c := 0; c < int(partition.NumComponents); c++ {
			args["dir_"+partition.Component(c).String()] = int64(it.Directions[c])
			if it.Sparse[c] {
				args["sparse_"+partition.Component(c).String()] = 1
			}
		}
		d.tr.Emit(trace.Span{Kind: trace.KindDecision, Epoch: d.r.Epoch(),
			Iter: d.curIter, Step: -1, Name: "choose_schedule",
			Start: s0, Dur: d.tr.Now() - s0, Args: args})
	}
}

// loadCheckpoint rebuilds the rank's iteration state by replaying the delta
// chain up to resumeIter. A replaced rank slot (its predecessor fail-stopped
// last epoch) additionally reloads and verifies its graph-tier partition —
// the read a rejoining replacement pays, and the bulk of BytesRestored.
// Segments beyond the resume point are truncated: the re-executed iterations
// rewrite them, and a stale or torn tail must not shadow the rewrite.
func (d *driver) loadCheckpoint(wl workload) error {
	geo := wl.ckpt()
	cs, n, err := d.scope.Replay(d.r.ID, d.resumeIter,
		len(geo.hubF), len(geo.lF), len(geo.pHub), len(geo.pL))
	d.rec.FailStop.BytesRestored += n
	if err != nil {
		return err
	}
	if d.replaced && d.store != nil {
		var rg partition.RankGraph
		gn, err := d.store.ReadRankGraph(d.r.ID, &rg)
		d.rec.FailStop.BytesRestored += gn
		if err != nil {
			return err
		}
		if rg.LocalN != d.rg.LocalN {
			return fmt.Errorf("core: graph tier for rank %d has LocalN %d, want %d",
				d.r.ID, rg.LocalN, d.rg.LocalN)
		}
	}
	wl.loadState(cs)
	d.resumeState = cs
	return d.scope.Truncate(d.r.ID, d.resumeIter)
}

// capture queues the state as of completing iteration iter to the async
// checkpoint writer; the synchronous cost is one memcpy into a capture
// buffer. must forces it through (the bootstrap segment, without which the
// chain is useless) instead of dropping when both buffers are in flight.
func (d *driver) capture(wl workload, iter int64, must bool) {
	var s0 int64
	if d.tr != nil {
		s0 = d.tr.Now()
	}
	cs := wl.ckpt()
	ok := d.writer.Checkpoint(iter, must,
		cs.hubF, cs.hubV, cs.lF, cs.lV, cs.pHub, cs.pL, cs.activeL, cs.visitL)
	if d.tr != nil {
		sp := trace.Span{Kind: trace.KindCheckpoint, Epoch: d.r.Epoch(),
			Iter: iter, Step: -1, Name: "capture", Start: s0, Dur: d.tr.Now() - s0}
		if !ok {
			sp.Args = map[string]int64{"dropped": 1}
		}
		d.tr.Emit(sp)
	}
}

// runLoop is the engine's shared main loop for one world epoch: the
// generalization of the BFS loop every workload now rides. All ranks execute
// it in lockstep; every collective below is reached by every rank in the same
// order (direction choices derive from globally consistent state).
//
// Under a fault transport the loop becomes a step-granular retry loop: each
// of an iteration's four steps is snapshotted on entry, collective errors are
// collected without breaking the collective schedule, and at the iteration
// boundary all ranks vote over the reliable control plane. The vote carries a
// failed-step mask — transient errors restore to the lowest globally failed
// step and re-execute only from there, so components that completed cleanly
// on every rank are not re-run — and a dead-rank bitmask. Death is the one
// non-retryable verdict: every rank returns a *deadWorldError and the engine
// rebuilds the world at the next epoch and resumes from checkpoint. Retry is
// idempotent because each workload's snapshot covers its non-monotone state.
// MaxRetries consecutive failed votes (or maxIter without convergence) abort
// with ErrNoConvergence.
func (d *driver) runLoop(wl workload) ([]IterTrace, error) {
	faulty := d.r.Faulty()

	// Epoch setup point: a rank can die before the traversal proper — the
	// "failure during partitioning/setup" case — modeled as a tagged barrier
	// at epoch start plus a death vote. Only run under a fault transport;
	// a reliable world has nothing to detect.
	if faulty {
		d.r.SetIter(-1)
		d.r.SetTag(TagSetup)
		berr := d.r.World.Barrier()
		if _, dead := d.vote(0, berr); len(dead) > 0 {
			return nil, &deadWorldError{dead: dead}
		}
		// A transient setup-barrier error is harmless: the barrier carries
		// no state and the vote just agreed nobody died.
	}

	startIter := 0
	var initErr error
	if d.scope != nil && d.resumeIter >= -1 {
		t0 := time.Now()
		var s0 int64
		if d.tr != nil {
			s0 = d.tr.Now()
		}
		initErr = d.loadCheckpoint(wl)
		d.replayDur = time.Since(t0)
		if d.tr != nil {
			sp := trace.Span{Kind: trace.KindRecovery, Iter: d.resumeIter, Step: -1,
				Name: "replay", Start: s0, Dur: d.tr.Now() - s0,
				Bytes: d.rec.FailStop.BytesRestored}
			if initErr != nil {
				sp.Err = 1
			}
			d.tr.Emit(sp)
		}
		startIter = int(d.resumeIter) + 1
	} else {
		initErr = wl.bootstrap()
		if d.scope != nil && initErr == nil {
			// A fresh start over an existing scope (e.g. a chain too torn to
			// resume) must clear any stale tail before rewriting it.
			initErr = d.scope.Truncate(d.r.ID, -1)
		}
	}
	if d.scope != nil && initErr == nil {
		// The async writer goroutine records on its own forked stream: a
		// trace stream is single-writer and the rank goroutine keeps d.tr.
		var wtr *trace.Stream
		if d.tr != nil {
			wtr = d.tr.Fork()
		}
		geo := wl.ckpt()
		d.writer, initErr = checkpoint.NewWriter(d.scope, d.r.ID,
			len(geo.hubF), len(geo.lF), len(geo.pHub), len(geo.pL),
			d.resumeState, wtr)
	}
	if d.writer != nil {
		defer func() {
			ws := d.writer.Close()
			d.rec.FailStop.CheckpointSegments += ws.Segments
			d.rec.FailStop.CheckpointBytes += ws.Bytes
			d.rec.FailStop.CheckpointDropped += ws.Dropped
			d.rec.FailStop.CheckpointErrors += ws.Errors
		}()
	}
	if d.scope != nil {
		// Init vote: a rank aborting on a local replay/setup error must not
		// leave the others stuck in the iteration loop's collectives. Rides
		// the control plane, with or without a fault transport.
		var bad int64
		if initErr != nil {
			bad = 1
		}
		if comm.ControlSumInt64(d.r.World, bad) > 0 {
			if initErr == nil {
				initErr = errRemoteRank
			}
			return nil, fmt.Errorf("core: checkpoint init failed: %w", initErr)
		}
		if d.resumeState == nil {
			d.capture(wl, -1, true)
		}
	} else if initErr != nil {
		return nil, initErr
	}

	var itrace []IterTrace
	attempt := 0
	converged := false
	for iter := startIter; iter < d.maxIter; iter++ {
		d.r.SetIter(int64(iter))
		d.curIter = int64(iter)
		d.curAttempt = attempt
		attemptStart := time.Now()
		d.iterBytesBase = commBytes(d.rec)
		var it IterTrace
		wl.beginIter(&it)
		drainAgreed := false
		g := 0
		for {
			d.curAttempt = attempt
			var stepErrs [numSteps]error
			var failMask uint64
			for ; g < numSteps; g++ {
				d.curStep = g
				if faulty {
					d.recSnaps[g] = *d.rec
					wl.snapshot(g)
				}
				if err := wl.step(g, &it); err != nil {
					stepErrs[g] = err
					failMask |= 1 << uint(g)
				}
			}
			if !faulty {
				// A reliable world's collectives cannot fail, but a drain
				// request must still be agreed: the closure may flip between
				// two ranks' polls, and a rank leaving the loop alone would
				// strand the others in the next iteration's collectives.
				if d.e.Opt.Drain != nil {
					var req uint64
					if d.e.Opt.Drain() {
						req = drainBit
					}
					if comm.ControlOrWords(d.r.World, []uint64{req})[0]&drainBit != 0 {
						drainAgreed = true
					}
				}
				break
			}
			// A drain request rides the vote's step-mask word: it needs the
			// same any-rank-wins agreement as a failed step, and the bit is
			// far above any real step index.
			if d.e.Opt.Drain != nil && d.e.Opt.Drain() {
				failMask |= drainBit
			}
			// Agreement: which steps failed anywhere, and did anyone die?
			gmask, dead := d.vote(failMask, stepErrs[:]...)
			if len(dead) > 0 {
				return itrace, &deadWorldError{dead: dead}
			}
			if gmask&drainBit != 0 {
				// Strip the drain verdict before the failed-step checks below:
				// drain is not a failure and must not trigger a retry, and
				// TrailingZeros on a mask holding only drainBit would index a
				// nonexistent step.
				drainAgreed = true
				gmask &^= drainBit
			}
			if gmask == 0 {
				attempt = 0
				break
			}
			attempt++
			d.retries++
			if attempt > d.e.Opt.MaxRetries {
				err := firstErr(stepErrs[:])
				if err == nil {
					err = errRemoteRank
				}
				d.recovery += time.Since(attemptStart)
				return itrace, fmt.Errorf("core: iteration %d still failing after %d retries: %w: %w",
					iter, d.e.Opt.MaxRetries, ErrNoConvergence, err)
			}
			// Re-enter at the lowest step any rank failed: steps below it
			// completed cleanly on every rank, so their work stands. Every
			// rank restores the same step's snapshot, keeping the collective
			// schedule from there identical.
			g = bits.TrailingZeros64(gmask)
			wl.restore(g)
			*d.rec = d.recSnaps[g]
			if d.tr != nil {
				d.tr.Emit(trace.Span{Kind: trace.KindRecovery, Iter: d.curIter,
					Step: g, Attempt: attempt, Name: "retry", Start: d.tr.Now(),
					Args: map[string]int64{"step_mask": int64(gmask)}})
			}
			time.Sleep(d.e.Opt.RetryBackoff << uint(attempt-1))
			d.recovery += time.Since(attemptStart)
			attemptStart = time.Now()
		}
		d.curStep = -1

		itrace = append(itrace, it)
		if wl.endIter(&it) {
			converged = true
			break
		}
		if drainAgreed {
			// Graceful drain: the iteration committed on every rank, so a
			// must-write checkpoint here is a clean resume point. The engine
			// keeps the run scope on this error, and a successor run replays
			// from exactly this iteration via ResumeFrom.
			if d.writer != nil {
				d.capture(wl, int64(iter), true)
			}
			return itrace, fmt.Errorf("core: drain requested at iteration %d: %w", iter, ErrDrained)
		}
		if d.writer != nil && iter%d.e.Opt.CheckpointEvery == 0 {
			d.capture(wl, int64(iter), false)
		}
	}
	if !converged {
		return itrace, fmt.Errorf("core: frontier still active after %d iterations: %w",
			d.maxIter, ErrNoConvergence)
	}

	// Delayed reduction (Section 5): one world-wide reduce after the run
	// instead of per-iteration traffic. The reduction is idempotent, so under
	// faults it retries with the same vote protocol as iterations. A
	// fail-stop here still aborts to the engine, which replays the final
	// iteration from checkpoint and reduces under the new world.
	d.r.SetTag(TagReduce)
	for attempt := 0; ; attempt++ {
		t0 := time.Now()
		d.curAttempt = attempt
		// Same rollback discipline as the step retry loop: a re-executed
		// reduction re-observes PhaseReduce, so the failed attempt's
		// observation must not stay in the aggregates.
		var recSnap stats.Recorder
		if faulty {
			recSnap = *d.rec
		}
		err := wl.finalize()
		if !faulty {
			return itrace, err
		}
		var bad uint64
		if err != nil {
			bad = 1
		}
		gmask, dead := d.vote(bad, err)
		if len(dead) > 0 {
			return itrace, &deadWorldError{dead: dead}
		}
		if gmask == 0 {
			return itrace, nil
		}
		d.retries++
		if attempt >= d.e.Opt.MaxRetries {
			d.recovery += time.Since(t0)
			if err == nil {
				err = errRemoteRank
			}
			return itrace, fmt.Errorf("core: parent reduction still failing after %d retries: %w: %w",
				d.e.Opt.MaxRetries, ErrNoConvergence, err)
		}
		*d.rec = recSnap
		if d.tr != nil {
			d.tr.Emit(trace.Span{Kind: trace.KindRecovery, Iter: d.curIter,
				Step: -1, Attempt: attempt, Name: "retry_reduce", Start: d.tr.Now()})
		}
		time.Sleep(d.e.Opt.RetryBackoff << uint(attempt))
		d.recovery += time.Since(t0)
	}
}
