package supervise

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"
)

// Reporter is the child half of the control pipe: a supervised worker sends
// newline-delimited status lines the supervisor treats as liveness proof and
// forwards as EventChild events. Lines are "kind detail" plain text — the
// supervisor attaches no meaning beyond recording the last one for
// post-mortems, so workers can put whatever a human debugging a crash wants
// to see first.
//
// A process that was not launched by a Supervisor (SUPERVISE_FD unset) gets
// a no-op reporter, so worker code calls it unconditionally.
type Reporter struct {
	mu sync.Mutex
	f  *os.File // nil: not supervised
}

// NewReporter opens the control pipe announced by the supervisor via
// SUPERVISE_FD, or a no-op reporter when the variable is unset or bogus.
func NewReporter() *Reporter {
	fds := os.Getenv(FDEnv)
	if fds == "" {
		return &Reporter{}
	}
	fd, err := strconv.Atoi(fds)
	if err != nil || fd < 3 {
		return &Reporter{}
	}
	return &Reporter{f: os.NewFile(uintptr(fd), "supervise-control")}
}

// Supervised reports whether a supervisor is listening.
func (r *Reporter) Supervised() bool { return r != nil && r.f != nil }

// Send writes one "kind detail" line; empty detail sends the bare kind.
// Errors are swallowed: a worker must not die because its supervisor did.
func (r *Reporter) Send(kind, detail string) {
	if !r.Supervised() {
		return
	}
	line := kind
	if detail != "" {
		line += " " + detail
	}
	r.mu.Lock()
	fmt.Fprintln(r.f, line)
	r.mu.Unlock()
}

// Sendf is Send with a formatted detail.
func (r *Reporter) Sendf(kind, format string, args ...any) {
	r.Send(kind, fmt.Sprintf(format, args...))
}

// StartHeartbeat sends "heartbeat" every interval until the returned stop
// function is called. No-op (returning a no-op stop) when unsupervised.
func (r *Reporter) StartHeartbeat(interval time.Duration) (stop func()) {
	if !r.Supervised() || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.Send("heartbeat", "")
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
