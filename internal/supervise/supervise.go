// Package supervise spawns and babysits a fleet of worker processes: one
// slot per worker, each slot restarted on crash under capped exponential
// backoff with jitter, a crash-loop circuit breaker that gives up with a
// typed error and a post-mortem stderr tail, liveness tracking over a
// control pipe the child inherits, and a graceful drain that forwards
// SIGTERM and escalates to SIGKILL on a deadline.
//
// The package is deliberately ignorant of what the workers compute. The
// caller's Start hook builds each worker's exec.Cmd; the supervisor attaches
// the control pipe (fd 3 in the child, announced via the SUPERVISE_FD
// environment variable), captures a stderr tail for post-mortems, and
// classifies every exit through the OnExit hook into restart / done / park /
// give-up. cmd/bfsrun layers the BFS-specific policy (sealed-slot parking,
// auth give-up, whole-world generation relaunch) on top.
package supervise

import (
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"
)

// FDEnv names the environment variable the supervisor sets on every child
// to announce the control pipe's file descriptor. Children call NewReporter,
// which reads it; unsupervised processes (variable unset) get a no-op
// reporter.
const FDEnv = "SUPERVISE_FD"

// controlFD is where the control pipe lands in the child: the first
// ExtraFiles slot after stdin/stdout/stderr.
const controlFD = 3

// ErrCrashLoop is the circuit breaker's verdict: a slot failed CrashLoopK
// times inside CrashLoopWindow and the supervisor stopped retrying.
var ErrCrashLoop = errors.New("supervise: worker crash-looping, giving up")

// ErrGiveUp wraps an OnExit DecideGiveUp verdict: the caller classified one
// worker's exit as fatal for the whole world.
var ErrGiveUp = errors.New("supervise: worker exit classified fatal")

// CrashLoopError carries the breaker's post-mortem. It unwraps to
// ErrCrashLoop.
type CrashLoopError struct {
	Slot     int
	Failures int           // failures inside the window when the breaker tripped
	Window   time.Duration // the sliding window that was exceeded
	// PostMortem is the offending worker's last stderr tail plus its last
	// control-pipe line, the evidence a human needs first.
	PostMortem string
}

func (e *CrashLoopError) Error() string {
	return fmt.Sprintf("supervise: slot %d failed %d times in %v: crash loop; last output:\n%s",
		e.Slot, e.Failures, e.Window, e.PostMortem)
}

func (e *CrashLoopError) Unwrap() error { return ErrCrashLoop }

// GiveUpError carries the exit the OnExit hook declared fatal. It unwraps to
// ErrGiveUp.
type GiveUpError struct {
	Exit Exit
}

func (e *GiveUpError) Error() string {
	return fmt.Sprintf("supervise: slot %d gen %d exit fatal (%s); last output:\n%s",
		e.Exit.Slot, e.Exit.Gen, e.Exit.status(), e.Exit.StderrTail)
}

func (e *GiveUpError) Unwrap() error { return ErrGiveUp }

// Decision classifies one worker exit.
type Decision int

const (
	// DecideRestart respawns the slot after backoff (breaker permitting).
	DecideRestart Decision = iota
	// DecideDone retires the slot as successfully finished.
	DecideDone
	// DecidePark retires the slot as dead-but-not-fatal: no restart, no
	// error. The BFS use: a restarted worker whose proc id was sealed by the
	// peers' dead verdict can never rejoin; the spare pool already covers it.
	DecidePark
	// DecideGiveUp stops the whole supervisor with a GiveUpError.
	DecideGiveUp
)

// Exit describes one worker exit, as handed to OnExit and carried in
// GiveUpError.
type Exit struct {
	Slot, Gen  int
	Code       int    // exit code; -1 when killed by a signal or never started
	Signal     string // signal name when signal-killed, "" otherwise
	Err        error  // raw Wait/Start error, nil on clean exit
	Hung       bool   // true when the supervisor SIGKILLed it for heartbeat silence
	Uptime     time.Duration
	StderrTail string // last TailBytes of the worker's stderr
	LastLine   string // last control-pipe line, "" if it never reported
}

func (x Exit) status() string {
	switch {
	case x.Hung:
		return "hung, killed by supervisor"
	case x.Signal != "":
		return "signal " + x.Signal
	default:
		return fmt.Sprintf("exit code %d", x.Code)
	}
}

// EventKind tags supervisor lifecycle events.
type EventKind string

const (
	EventSpawn    EventKind = "spawn"
	EventExit     EventKind = "exit"
	EventBackoff  EventKind = "backoff"
	EventRestart  EventKind = "restart"
	EventPark     EventKind = "park"
	EventGiveUp   EventKind = "give_up"
	EventHangKill EventKind = "hang_kill"
	EventDrain    EventKind = "drain"
	EventDone     EventKind = "done"
	// EventChild forwards one raw control-pipe line from a worker.
	EventChild EventKind = "child"
)

// Event is one supervisor lifecycle notification, delivered synchronously on
// the supervisor's loop goroutine.
type Event struct {
	Slot, Gen int
	Kind      EventKind
	Detail    string
}

// Stats counts what the supervisor did, for the resilience report.
type Stats struct {
	Spawns   int64 `json:"spawns"`
	Restarts int64 `json:"restarts"`
	Crashes  int64 `json:"crashes"` // nonzero/signal exits, hangs included
	Hangs    int64 `json:"hangs,omitempty"`
	Parked   int64 `json:"parked,omitempty"`
	Done     int64 `json:"done"`
	Drained  int64 `json:"drained,omitempty"` // workers stopped by a drain
}

// Config configures a Supervisor. Workers and Start are mandatory.
type Config struct {
	// Workers is the number of slots; slot ids are 0..Workers-1.
	Workers int
	// Start builds (without starting) the command for one slot's gen-th
	// incarnation. The supervisor attaches the control pipe and stderr tail,
	// then starts it.
	Start func(slot, gen int) (*exec.Cmd, error)
	// OnExit classifies a worker exit. nil defaults to: code 0 → DecideDone,
	// anything else → DecideRestart.
	OnExit func(Exit) Decision
	// OnEvent, when non-nil, observes lifecycle events (loop goroutine; keep
	// it fast).
	OnEvent func(Event)

	// BackoffBase is the first restart delay, doubling per consecutive crash
	// up to BackoffCap, with uniform [1/2,1] jitter. Defaults 100ms / 5s.
	BackoffBase, BackoffCap time.Duration
	// CrashLoopK failures within CrashLoopWindow trip the breaker (defaults
	// 5 in 30s). A worker that stays up longer than the window resets its
	// slot's consecutive-crash count.
	CrashLoopK      int
	CrashLoopWindow time.Duration
	// HeartbeatTimeout kills a worker whose control pipe has been silent
	// this long — but only workers that reported at least once, so children
	// that never adopt the reporter are not shot for silence. 0 disables.
	HeartbeatTimeout time.Duration
	// SerializeRestarts admits at most one restarted incarnation (gen > 1)
	// at a time: a restart whose backoff expires while another restarted
	// worker is still running queues behind it. Concurrently-restarted
	// members of a distributed world cannot be told apart from a fresh
	// world by each other — they hold no dead verdicts for one another —
	// so they would recognize each other as a quorum and re-run the
	// world's work as a rump session against live state. Serialized, each
	// restart meets the real world's verdict (re-admission, sealed
	// rejection, or orphan silence) alone.
	SerializeRestarts bool
	// DrainTimeout bounds a graceful drain: SIGTERM first, SIGKILL to
	// whatever is still alive at the deadline. Default 10s.
	DrainTimeout time.Duration
	// TailBytes is the per-worker stderr tail kept for post-mortems
	// (default 4096).
	TailBytes int
}

func (c *Config) fill() error {
	if c.Workers <= 0 {
		return fmt.Errorf("supervise: %d workers", c.Workers)
	}
	if c.Start == nil {
		return errors.New("supervise: Config.Start is required")
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 5 * time.Second
	}
	if c.CrashLoopK <= 0 {
		c.CrashLoopK = 5
	}
	if c.CrashLoopWindow <= 0 {
		c.CrashLoopWindow = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.TailBytes <= 0 {
		c.TailBytes = 4096
	}
	return nil
}

type slotState int

const (
	slotIdle slotState = iota
	slotRunning
	slotBackoff
	slotDone
	slotParked
)

type slot struct {
	id       int
	gen      int // incarnation counter, bumped per spawn
	state    slotState
	cmd      *exec.Cmd
	tail     *tailBuffer
	started  time.Time
	lastBeat time.Time
	lastLine string
	beating  bool // reported at least once on the control pipe
	hung     bool // marked by the hang killer; annotates the next exit

	crashes  int         // consecutive crashes, resets after a long run
	failures []time.Time // breaker window
}

type exitMsg struct {
	slot, gen int
	err       error
	uptime    time.Duration
}

type lineMsg struct {
	slot, gen int
	text      string
}

// Supervisor babysits Config.Workers worker processes until every slot is
// done or parked, the crash-loop breaker trips, an exit is classified fatal,
// or a drain completes.
type Supervisor struct {
	cfg   Config
	slots []*slot

	exitCh    chan exitMsg
	lineCh    chan lineMsg
	restartCh chan int
	drainCh   chan struct{}

	// pendingRestarts queues slots whose backoff expired while another
	// restarted incarnation was running (SerializeRestarts).
	pendingRestarts []int

	mu        sync.Mutex
	stats     Stats
	drainOnce sync.Once
}

// New validates the config and prepares a supervisor; Run starts the fleet.
func New(cfg Config) (*Supervisor, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	s := &Supervisor{
		cfg:       cfg,
		exitCh:    make(chan exitMsg, cfg.Workers),
		lineCh:    make(chan lineMsg, cfg.Workers*4),
		restartCh: make(chan int, cfg.Workers),
		drainCh:   make(chan struct{}, 1),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.slots = append(s.slots, &slot{id: i})
	}
	return s, nil
}

// Stats returns a snapshot of the supervisor's counters; safe concurrently
// with Run.
func (s *Supervisor) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Drain asks Run to stop gracefully: every running worker gets SIGTERM, the
// drain deadline escalates survivors to SIGKILL, and Run returns nil.
// Safe from any goroutine (a signal handler, typically); repeat calls no-op.
func (s *Supervisor) Drain() {
	s.drainOnce.Do(func() { s.drainCh <- struct{}{} })
}

func (s *Supervisor) emit(ev Event) {
	if s.cfg.OnEvent != nil {
		s.cfg.OnEvent(ev)
	}
}

func (s *Supervisor) bump(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// spawn starts slot sl's next incarnation: control pipe attached as the
// child's fd 3 (announced via SUPERVISE_FD), stderr teed into the
// post-mortem tail. A failed start is fed back as a synthetic exit so the
// normal crash policy (backoff, breaker) applies to unstartable workers too.
func (s *Supervisor) spawn(sl *slot) {
	sl.gen++
	gen := sl.gen
	sl.tail = &tailBuffer{max: s.cfg.TailBytes}
	sl.beating = false
	sl.hung = false
	sl.lastLine = ""
	fail := func(err error) {
		sl.state = slotRunning // the exit handler transitions it
		s.exitCh <- exitMsg{slot: sl.id, gen: gen, err: err}
	}
	cmd, err := s.cfg.Start(sl.id, gen)
	if err != nil {
		fail(fmt.Errorf("start hook: %w", err))
		return
	}
	r, w, err := os.Pipe()
	if err != nil {
		fail(err)
		return
	}
	cmd.ExtraFiles = append(cmd.ExtraFiles, w)
	if cmd.Env == nil {
		cmd.Env = os.Environ()
	}
	cmd.Env = append(cmd.Env, fmt.Sprintf("%s=%d", FDEnv, controlFD+len(cmd.ExtraFiles)-1))
	if cmd.Stderr == nil {
		cmd.Stderr = sl.tail
	} else {
		cmd.Stderr = io.MultiWriter(cmd.Stderr, sl.tail)
	}
	if cmd.SysProcAttr == nil {
		// Each worker leads its own process group so kills and drains reach
		// the whole worker tree: a hung worker's orphaned children would
		// otherwise hold its stderr pipe open and block Wait forever.
		cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	}
	if err := cmd.Start(); err != nil {
		r.Close()
		w.Close()
		fail(err)
		return
	}
	w.Close() // child holds the write end now; EOF on r tracks its death
	sl.cmd = cmd
	sl.started = time.Now()
	sl.lastBeat = sl.started
	sl.state = slotRunning
	s.bump(func(st *Stats) { st.Spawns++ })
	s.emit(Event{Slot: sl.id, Gen: gen, Kind: EventSpawn, Detail: cmd.Path})

	go s.readControl(sl.id, gen, r)
	go func() {
		start := time.Now()
		err := cmd.Wait()
		s.exitCh <- exitMsg{slot: sl.id, gen: gen, err: err, uptime: time.Since(start)}
	}()
}

// readControl scans one incarnation's control pipe into lineMsgs until EOF.
func (s *Supervisor) readControl(id, gen int, r *os.File) {
	defer r.Close()
	buf := make([]byte, 0, 256)
	one := make([]byte, 512)
	for {
		n, err := r.Read(one)
		if n > 0 {
			buf = append(buf, one[:n]...)
			for {
				i := indexByte(buf, '\n')
				if i < 0 {
					break
				}
				line := string(buf[:i])
				buf = append(buf[:0], buf[i+1:]...)
				if line != "" {
					s.lineCh <- lineMsg{slot: id, gen: gen, text: line}
				}
			}
		}
		if err != nil {
			return
		}
	}
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

// jittered maps d to a uniform sample in [d/2, d], desynchronizing restart
// stampedes the same way the wire dialer's backoff does.
func jittered(d time.Duration) time.Duration {
	if d <= time.Microsecond {
		return d
	}
	half := int64(d) / 2
	return time.Duration(half + rand.Int64N(half+1))
}

// Run spawns every slot and babysits the fleet. It returns nil when all
// slots are done or parked (or a Drain completed), a *CrashLoopError when
// one slot trips the breaker, and a *GiveUpError when OnExit declares an
// exit fatal. On an error return every still-running worker is SIGKILLed.
func (s *Supervisor) Run() error {
	for _, sl := range s.slots {
		s.spawn(sl)
	}

	var tick *time.Ticker
	var tickC <-chan time.Time
	if s.cfg.HeartbeatTimeout > 0 {
		period := s.cfg.HeartbeatTimeout / 4
		if period < time.Millisecond {
			period = time.Millisecond
		}
		tick = time.NewTicker(period)
		tickC = tick.C
		defer tick.Stop()
	}

	for {
		select {
		case ex := <-s.exitCh:
			if err := s.handleExit(ex); err != nil {
				s.killAll()
				return err
			}
			s.popRestart()
		case ln := <-s.lineCh:
			sl := s.slots[ln.slot]
			if ln.gen != sl.gen {
				break // stale line from a replaced incarnation
			}
			sl.beating = true
			sl.lastBeat = time.Now()
			sl.lastLine = ln.text
			s.emit(Event{Slot: ln.slot, Gen: ln.gen, Kind: EventChild, Detail: ln.text})
		case id := <-s.restartCh:
			sl := s.slots[id]
			if sl.state != slotBackoff {
				break // drained or killed while waiting
			}
			if s.cfg.SerializeRestarts && s.restartedRunning() {
				s.pendingRestarts = append(s.pendingRestarts, id)
				break
			}
			s.restart(sl)
		case <-s.drainCh:
			s.drain()
			return nil
		case <-tickC:
			s.checkHangs()
		}
		if s.allRetired() {
			return nil
		}
	}
}

// handleExit classifies one worker death and either retires the slot,
// schedules a restart, or returns the fatal verdict that stops Run.
func (s *Supervisor) handleExit(ex exitMsg) error {
	sl := s.slots[ex.slot]
	if ex.gen != sl.gen || sl.state != slotRunning {
		return nil // an incarnation the supervisor already replaced
	}
	sl.cmd = nil
	x := Exit{
		Slot: ex.slot, Gen: ex.gen, Code: -1, Err: ex.err, Hung: sl.hung,
		Uptime: ex.uptime, StderrTail: sl.tail.String(), LastLine: sl.lastLine,
	}
	var ee *exec.ExitError
	switch {
	case ex.err == nil:
		x.Code = 0
	case errors.As(ex.err, &ee):
		if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
			x.Signal = ws.Signal().String()
		} else {
			x.Code = ee.ExitCode()
		}
	}
	s.emit(Event{Slot: x.Slot, Gen: x.Gen, Kind: EventExit, Detail: x.status()})

	decide := s.cfg.OnExit
	if decide == nil {
		decide = func(x Exit) Decision {
			if x.Code == 0 {
				return DecideDone
			}
			return DecideRestart
		}
	}
	switch decide(x) {
	case DecideDone:
		sl.state = slotDone
		s.bump(func(st *Stats) { st.Done++ })
		s.emit(Event{Slot: x.Slot, Gen: x.Gen, Kind: EventDone})
		return nil
	case DecidePark:
		sl.state = slotParked
		s.bump(func(st *Stats) { st.Parked++ })
		s.emit(Event{Slot: x.Slot, Gen: x.Gen, Kind: EventPark, Detail: x.status()})
		return nil
	case DecideGiveUp:
		s.emit(Event{Slot: x.Slot, Gen: x.Gen, Kind: EventGiveUp, Detail: x.status()})
		return &GiveUpError{Exit: x}
	}

	// DecideRestart: count the crash, consult the breaker, back off.
	s.bump(func(st *Stats) { st.Crashes++ })
	if ex.uptime > s.cfg.CrashLoopWindow {
		sl.crashes = 0 // it ran long enough to call the previous life healthy
	}
	sl.crashes++
	now := time.Now()
	sl.failures = append(sl.failures, now)
	cut := 0
	for cut < len(sl.failures) && now.Sub(sl.failures[cut]) > s.cfg.CrashLoopWindow {
		cut++
	}
	sl.failures = sl.failures[cut:]
	if len(sl.failures) >= s.cfg.CrashLoopK {
		pm := x.StderrTail
		if x.LastLine != "" {
			pm += "\nlast report: " + x.LastLine
		}
		s.emit(Event{Slot: x.Slot, Gen: x.Gen, Kind: EventGiveUp, Detail: "crash loop"})
		return &CrashLoopError{
			Slot: x.Slot, Failures: len(sl.failures),
			Window: s.cfg.CrashLoopWindow, PostMortem: pm,
		}
	}
	backoff := s.cfg.BackoffBase << uint(sl.crashes-1)
	if backoff > s.cfg.BackoffCap || backoff <= 0 {
		backoff = s.cfg.BackoffCap
	}
	backoff = jittered(backoff)
	sl.state = slotBackoff
	s.emit(Event{Slot: x.Slot, Gen: x.Gen, Kind: EventBackoff, Detail: backoff.String()})
	id := sl.id
	time.AfterFunc(backoff, func() { s.restartCh <- id })
	return nil
}

// restart respawns a slot whose backoff has expired and whose turn it is.
func (s *Supervisor) restart(sl *slot) {
	s.bump(func(st *Stats) { st.Restarts++ })
	s.emit(Event{Slot: sl.id, Gen: sl.gen + 1, Kind: EventRestart})
	s.spawn(sl)
}

// restartedRunning reports whether any restarted (gen > 1) incarnation is
// currently alive.
func (s *Supervisor) restartedRunning() bool {
	for _, sl := range s.slots {
		if sl.state == slotRunning && sl.gen > 1 {
			return true
		}
	}
	return false
}

// popRestart releases the next queued serialized restart once no restarted
// incarnation is running anymore.
func (s *Supervisor) popRestart() {
	for len(s.pendingRestarts) > 0 && !s.restartedRunning() {
		id := s.pendingRestarts[0]
		s.pendingRestarts = s.pendingRestarts[1:]
		sl := s.slots[id]
		if sl.state != slotBackoff {
			continue // drained or killed while queued
		}
		s.restart(sl)
		return
	}
}

// checkHangs SIGKILLs workers that adopted the reporter and then went silent
// past HeartbeatTimeout; the kill surfaces as a normal exit and flows through
// the restart policy.
func (s *Supervisor) checkHangs() {
	now := time.Now()
	for _, sl := range s.slots {
		if sl.state != slotRunning || !sl.beating || sl.hung {
			continue
		}
		if now.Sub(sl.lastBeat) <= s.cfg.HeartbeatTimeout {
			continue
		}
		sl.hung = true
		s.bump(func(st *Stats) { st.Hangs++ })
		s.emit(Event{Slot: sl.id, Gen: sl.gen, Kind: EventHangKill,
			Detail: now.Sub(sl.lastBeat).String()})
		signalTree(sl.cmd, syscall.SIGKILL)
	}
}

// drain forwards SIGTERM to every running worker, cancels pending restarts,
// and reaps exits until everything is down or DrainTimeout escalates the
// stragglers to SIGKILL.
func (s *Supervisor) drain() {
	s.emit(Event{Slot: -1, Kind: EventDrain})
	running := 0
	for _, sl := range s.slots {
		switch sl.state {
		case slotBackoff:
			sl.state = slotParked // never coming back; drained while down
		case slotRunning:
			running++
			signalTree(sl.cmd, syscall.SIGTERM)
		}
	}
	deadline := time.After(s.cfg.DrainTimeout)
	for running > 0 {
		select {
		case ex := <-s.exitCh:
			sl := s.slots[ex.slot]
			if ex.gen != sl.gen || sl.state != slotRunning {
				break
			}
			sl.state = slotDone
			sl.cmd = nil
			running--
			s.bump(func(st *Stats) { st.Drained++ })
			s.emit(Event{Slot: ex.slot, Gen: ex.gen, Kind: EventExit, Detail: "drained"})
		case <-s.lineCh:
			// Keep the control pipes flowing so a worker heartbeating through
			// its drain never blocks on a full pipe instead of exiting.
		case <-deadline:
			for _, sl := range s.slots {
				if sl.state == slotRunning {
					signalTree(sl.cmd, syscall.SIGKILL)
				}
			}
			deadline = nil // reap the kills; nil channel never fires again
		}
	}
}

// signalTree delivers sig to the worker's whole process group, falling back
// to the lead process when the group is gone or was never created.
func signalTree(cmd *exec.Cmd, sig syscall.Signal) {
	if cmd == nil || cmd.Process == nil {
		return
	}
	if err := syscall.Kill(-cmd.Process.Pid, sig); err != nil {
		_ = cmd.Process.Signal(sig)
	}
}

// killAll SIGKILLs whatever is still up; the error paths' cleanup.
func (s *Supervisor) killAll() {
	for _, sl := range s.slots {
		if sl.state == slotRunning {
			signalTree(sl.cmd, syscall.SIGKILL)
		}
		if sl.state == slotBackoff {
			sl.state = slotParked
		}
	}
}

// allRetired reports whether every slot reached a terminal state.
func (s *Supervisor) allRetired() bool {
	for _, sl := range s.slots {
		if sl.state != slotDone && sl.state != slotParked {
			return false
		}
	}
	return true
}

// tailBuffer keeps the last max bytes written, for post-mortems.
type tailBuffer struct {
	mu  sync.Mutex
	max int
	b   []byte
}

func (t *tailBuffer) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.b = append(t.b, p...)
	if len(t.b) > t.max {
		t.b = append(t.b[:0], t.b[len(t.b)-t.max:]...)
	}
	return len(p), nil
}

func (t *tailBuffer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return string(t.b)
}
