package supervise

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// sh builds a Start hook launching one shell script per slot; {SLOT} and
// {GEN} in the script are substituted so incarnations can tell themselves
// apart.
func sh(script string) func(slot, gen int) (*exec.Cmd, error) {
	return func(slot, gen int) (*exec.Cmd, error) {
		body := strings.ReplaceAll(script, "{SLOT}", itoa(slot))
		body = strings.ReplaceAll(body, "{GEN}", itoa(gen))
		return exec.Command("/bin/sh", "-c", body), nil
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// eventLog collects supervisor events thread-safely.
type eventLog struct {
	mu  sync.Mutex
	evs []Event
}

func (l *eventLog) add(ev Event) {
	l.mu.Lock()
	l.evs = append(l.evs, ev)
	l.mu.Unlock()
}

func (l *eventLog) kinds() map[EventKind]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := map[EventKind]int{}
	for _, ev := range l.evs {
		m[ev.Kind]++
	}
	return m
}

func TestSupervisorAllWorkersFinish(t *testing.T) {
	var log eventLog
	s, err := New(Config{
		Workers: 3,
		Start:   sh("exit 0"),
		OnEvent: log.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := s.Stats()
	if st.Spawns != 3 || st.Done != 3 || st.Crashes != 0 || st.Restarts != 0 {
		t.Fatalf("stats %+v, want 3 spawns all done", st)
	}
	if k := log.kinds(); k[EventSpawn] != 3 || k[EventDone] != 3 {
		t.Fatalf("events %v", k)
	}
}

// TestSupervisorRestartsCrashOnce: gen 1 crashes, gen 2 succeeds — one
// restart after backoff, then a clean finish.
func TestSupervisorRestartsCrashOnce(t *testing.T) {
	marker := filepath.Join(t.TempDir(), "crashed")
	s, err := New(Config{
		Workers: 1,
		Start: sh("if [ -e " + marker + " ]; then exit 0; fi; " +
			"touch " + marker + "; echo doomed-incarnation >&2; exit 1"),
		BackoffBase: 5 * time.Millisecond,
		BackoffCap:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := s.Stats()
	if st.Spawns != 2 || st.Restarts != 1 || st.Crashes != 1 || st.Done != 1 {
		t.Fatalf("stats %+v, want 1 crash + 1 restart + done", st)
	}
}

// TestSupervisorCrashLoopBreaker: a worker that always dies must trip the
// breaker after CrashLoopK failures with the stderr tail in the post-mortem,
// not restart forever.
func TestSupervisorCrashLoopBreaker(t *testing.T) {
	s, err := New(Config{
		Workers:         1,
		Start:           sh("echo gen-{GEN} exploding >&2; exit 7"),
		BackoffBase:     time.Millisecond,
		BackoffCap:      4 * time.Millisecond,
		CrashLoopK:      3,
		CrashLoopWindow: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.Run()
	if !errors.Is(err, ErrCrashLoop) {
		t.Fatalf("Run = %v, want ErrCrashLoop", err)
	}
	var cl *CrashLoopError
	if !errors.As(err, &cl) {
		t.Fatalf("error %T lacks CrashLoopError", err)
	}
	if cl.Slot != 0 || cl.Failures != 3 {
		t.Fatalf("breaker verdict %+v", cl)
	}
	if !strings.Contains(cl.PostMortem, "exploding") {
		t.Fatalf("post-mortem lost the stderr tail: %q", cl.PostMortem)
	}
	if st := s.Stats(); st.Crashes != 3 || st.Restarts != 2 {
		t.Fatalf("stats %+v, want 3 crashes / 2 restarts before the third verdict", st)
	}
}

// TestSupervisorExitClassification: OnExit parks a sealed exit code and
// gives up on a fatal one.
func TestSupervisorExitClassification(t *testing.T) {
	s, err := New(Config{
		Workers: 2,
		Start:   sh("exit $((3 + {SLOT} * 0))"), // both exit 3
		OnExit: func(x Exit) Decision {
			if x.Code == 3 {
				return DecidePark
			}
			return DecideRestart
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("parked exits must not fail Run: %v", err)
	}
	if st := s.Stats(); st.Parked != 2 || st.Restarts != 0 {
		t.Fatalf("stats %+v, want both slots parked", st)
	}

	s2, err := New(Config{
		Workers: 1,
		Start:   sh("echo bad-credentials >&2; exit 4"),
		OnExit: func(x Exit) Decision {
			if x.Code == 4 {
				return DecideGiveUp
			}
			return DecideRestart
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s2.Run()
	if !errors.Is(err, ErrGiveUp) {
		t.Fatalf("Run = %v, want ErrGiveUp", err)
	}
	var gu *GiveUpError
	if !errors.As(err, &gu) || gu.Exit.Code != 4 || !strings.Contains(gu.Exit.StderrTail, "bad-credentials") {
		t.Fatalf("give-up verdict %+v", err)
	}
}

// TestSupervisorHangKill: a worker that heartbeats once and then goes silent
// must be shot by the hang detector; a worker that never reports must not be.
func TestSupervisorHangKill(t *testing.T) {
	var log eventLog
	s, err := New(Config{
		Workers: 2,
		// Slot 0 reports then hangs; slot 1 never reports and finishes slowly.
		Start: func(slot, gen int) (*exec.Cmd, error) {
			if slot == 0 {
				// The control pipe is fd 3 (no other ExtraFiles here).
				return exec.Command("/bin/sh", "-c",
					"echo heartbeat >&3; sleep 60"), nil
			}
			return exec.Command("/bin/sh", "-c", "sleep 0.4; exit 0"), nil
		},
		OnExit: func(x Exit) Decision {
			if x.Hung {
				return DecidePark
			}
			if x.Code == 0 {
				return DecideDone
			}
			return DecideRestart
		},
		HeartbeatTimeout: 100 * time.Millisecond,
		OnEvent:          log.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("supervisor never finished; hang detector did not fire")
	}
	st := s.Stats()
	if st.Hangs != 1 || st.Parked != 1 || st.Done != 1 {
		t.Fatalf("stats %+v, want 1 hang-kill parked + 1 clean finish", st)
	}
	if k := log.kinds(); k[EventHangKill] != 1 || k[EventChild] < 1 {
		t.Fatalf("events %v, want one hang_kill and the forwarded heartbeat", k)
	}
}

// TestSupervisorDrain: Drain must SIGTERM the fleet, let workers exit
// gracefully, and return nil from Run.
func TestSupervisorDrain(t *testing.T) {
	s, err := New(Config{
		Workers:      2,
		Start:        sh(`trap 'exit 0' TERM; while :; do sleep 0.02; done`),
		DrainTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Run() }()
	time.Sleep(150 * time.Millisecond) // let both shells install their traps
	s.Drain()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run after drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain never completed")
	}
	if st := s.Stats(); st.Drained != 2 {
		t.Fatalf("stats %+v, want both workers drained", st)
	}
}

// TestSupervisorDrainEscalates: a worker ignoring SIGTERM must be SIGKILLed
// at the drain deadline rather than blocking the drain forever.
func TestSupervisorDrainEscalates(t *testing.T) {
	s, err := New(Config{
		Workers:      1,
		Start:        sh(`trap '' TERM; while :; do sleep 0.02; done`),
		DrainTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Run() }()
	time.Sleep(150 * time.Millisecond)
	s.Drain()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run after escalated drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain never escalated to SIGKILL")
	}
}

// TestSupervisorSerializesRestarts: with SerializeRestarts, two slots whose
// first incarnations crash together must run their replacements one at a
// time. The replacements race for an atomic mkdir lock; any overlap leaves a
// marker file.
func TestSupervisorSerializesRestarts(t *testing.T) {
	dir := t.TempDir()
	lock := filepath.Join(dir, "lock")
	overlap := filepath.Join(dir, "overlap")
	s, err := New(Config{
		Workers: 2,
		Start: sh("if [ {GEN} -eq 1 ]; then exit 1; fi; " +
			"if mkdir " + lock + " 2>/dev/null; then sleep 0.15; rmdir " + lock + "; exit 0; " +
			"else echo gen-{GEN} >> " + overlap + "; exit 0; fi"),
		BackoffBase:       time.Millisecond,
		BackoffCap:        4 * time.Millisecond,
		SerializeRestarts: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if b, err := os.ReadFile(overlap); err == nil {
		t.Fatalf("restarted incarnations overlapped: %s", b)
	}
	if st := s.Stats(); st.Spawns != 4 || st.Restarts != 2 || st.Done != 2 {
		t.Fatalf("stats %+v, want 2 crashes each restarted once and finished", st)
	}
}

func TestReporterUnsupervisedIsNoop(t *testing.T) {
	t.Setenv(FDEnv, "")
	r := NewReporter()
	if r.Supervised() {
		t.Fatal("reporter claims supervision without SUPERVISE_FD")
	}
	r.Send("heartbeat", "") // must not panic or write anywhere
	stop := r.StartHeartbeat(time.Millisecond)
	stop()
}

func TestJitteredStaysInHalfOpenRange(t *testing.T) {
	d := 80 * time.Millisecond
	for i := 0; i < 200; i++ {
		j := jittered(d)
		if j < d/2 || j > d {
			t.Fatalf("jittered(%v) = %v outside [d/2, d]", d, j)
		}
	}
}
