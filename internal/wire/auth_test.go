package wire

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// rejectLog collects OnReject callbacks.
type rejectLog struct {
	mu   sync.Mutex
	errs []error
}

func (r *rejectLog) on(peer int, err error) {
	r.mu.Lock()
	r.errs = append(r.errs, fmt.Errorf("peer %d: %w", peer, err))
	r.mu.Unlock()
}

func (r *rejectLog) snapshot() []error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]error(nil), r.errs...)
}

func (r *rejectLog) waitFor(t *testing.T, sentinel error, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, err := range r.snapshot() {
			if errors.Is(err, sentinel) {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no %v rejection reported within %v; got %v", sentinel, timeout, r.snapshot())
}

func TestEndpointAuthenticatedHandshakeDelivers(t *testing.T) {
	rejects := &rejectLog{}
	eps, sinks := startGroup(t, 2, func(proc int, cfg *Config) {
		cfg.Secret = "s3cret"
		cfg.OnReject = rejects.on
	})
	Must0(eps[0].Send(1, &Frame{Type: TypeData, Seq: 1, Payload: []byte("a")}))
	Must0(eps[1].Send(0, &Frame{Type: TypeData, Seq: 1, Payload: []byte("b")}))
	sinks[1].waitFrames(t, 0, 1, 5*time.Second)
	sinks[0].waitFrames(t, 1, 1, 5*time.Second)
	if got := rejects.snapshot(); len(got) != 0 {
		t.Fatalf("matching secrets produced rejections: %v", got)
	}
	if s := eps[0].Stats(); s.AuthRejects != 0 {
		t.Fatalf("AuthRejects = %d on a healthy authenticated world", s.AuthRejects)
	}
}

func TestEndpointWrongSecretRejectedNotRetried(t *testing.T) {
	rejects := &rejectLog{}
	eps, sinks := startGroup(t, 2, func(proc int, cfg *Config) {
		if proc == 0 {
			cfg.Secret = "alpha"
		} else {
			cfg.Secret = "beta"
			cfg.OnReject = rejects.on
		}
	})
	// Proc 1 dials proc 0; the acceptor's proof is keyed by the wrong secret,
	// so the dialer must reject with ErrAuth, latch the peer dead, and stop.
	rejects.waitFor(t, ErrAuth, 5*time.Second)
	sinks[1].waitDead(t, 0, 5*time.Second)
	if s := eps[1].Stats(); s.AuthRejects != 1 {
		t.Fatalf("dialer AuthRejects = %d, want exactly 1 (reported, not retried)", s.AuthRejects)
	}
	// No redial storm: the dial loop exited for good.
	before := eps[1].Stats().Reconnects
	time.Sleep(150 * time.Millisecond) // many backoff periods
	if after := eps[1].Stats().Reconnects; after != before {
		t.Fatalf("dialer kept reconnecting after ErrAuth: %d -> %d", before, after)
	}
}

func TestEndpointMissingSecretRejectedByAcceptor(t *testing.T) {
	accRejects := &rejectLog{}
	dialRejects := &rejectLog{}
	eps, sinks := startGroup(t, 2, func(proc int, cfg *Config) {
		if proc == 0 {
			cfg.Secret = "alpha"
			cfg.OnReject = accRejects.on
		} else {
			cfg.OnReject = dialRejects.on // no secret at all
		}
	})
	// The acceptor sees a hello without a challenge nonce and refuses it;
	// the dialer receives the typed rejection and gives up.
	accRejects.waitFor(t, ErrAuth, 5*time.Second)
	dialRejects.waitFor(t, ErrAuth, 5*time.Second)
	sinks[1].waitDead(t, 0, 5*time.Second)
	time.Sleep(150 * time.Millisecond)
	if s := eps[0].Stats(); s.AuthRejects != 1 {
		t.Fatalf("acceptor AuthRejects = %d, want exactly 1 (the dialer must not retry)", s.AuthRejects)
	}
}

func TestEndpointSilentDialerDroppedAtHandshakeDeadline(t *testing.T) {
	addrs := unixAddrs(t, 2)
	rejects := &rejectLog{}
	cfg := testConfig(0, addrs)
	cfg.HandshakeTimeout = 60 * time.Millisecond
	cfg.OnReject = rejects.on
	ep, err := Listen(cfg)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ep.Close()

	// A dialer that connects and then says nothing must not pin the accept
	// path: the endpoint drops it at the handshake deadline.
	c, err := net.Dial("unix", strings.TrimPrefix(addrs[0], "unix:"))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	start := time.Now()
	buf := make([]byte, 1)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("silent connection received data instead of being dropped")
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("silent connection held for %v, want a drop near the %v deadline", waited, cfg.HandshakeTimeout)
	}
	rejects.waitFor(t, ErrHandshake, 5*time.Second)
	if s := ep.Stats(); s.HandshakeTimeouts == 0 {
		t.Fatalf("HandshakeTimeouts = 0 after a silent dialer, stats=%+v", s)
	}
}

func TestEndpointSealedSessionRefusesRejoin(t *testing.T) {
	addrs := unixAddrs(t, 2)
	sink0, sink1 := newSink(), newSink()
	cfg0 := testConfig(0, addrs)
	cfg0.OnFrame, cfg0.OnPeerDead = sink0.onFrame, sink0.onDead
	ep0, err := Listen(cfg0)
	if err != nil {
		t.Fatalf("listen 0: %v", err)
	}
	defer ep0.Close()
	cfg1 := testConfig(1, addrs)
	cfg1.OnFrame, cfg1.OnPeerDead = sink1.onFrame, sink1.onDead
	ep1, err := Listen(cfg1)
	if err != nil {
		t.Fatalf("listen 1: %v", err)
	}
	Must0(ep1.Send(0, &Frame{Type: TypeData, Seq: 1}))
	sink0.waitFrames(t, 1, 1, 5*time.Second)

	ep1.Abort() // SIGKILL analog
	sink0.waitDead(t, 1, 5*time.Second)

	// A restarted process reusing proc 1's identity must learn the verdict
	// was final: the acceptor seals the session instead of resuming it.
	rejects := &rejectLog{}
	sink1b := newSink()
	cfg1b := testConfig(1, addrs)
	cfg1b.OnFrame, cfg1b.OnPeerDead = sink1b.onFrame, sink1b.onDead
	cfg1b.OnReject = rejects.on
	ep1b, err := Listen(cfg1b)
	if err != nil {
		t.Fatalf("relisten 1: %v", err)
	}
	defer ep1b.Close()
	rejects.waitFor(t, ErrSealed, 5*time.Second)
	sink1b.waitDead(t, 0, 5*time.Second)
}

// dropAt closes the connection right before each listed data-frame index is
// written, once per index.
type dropAt struct {
	mu   sync.Mutex
	at   map[uint64]bool
	hits atomic.Uint64
}

func (d *dropAt) OnConnSend(local, peer int, idx uint64) ConnFault {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.at[idx] {
		delete(d.at, idx)
		d.hits.Add(1)
		return ConnFault{Drop: true}
	}
	return ConnFault{}
}

// TestEndpointTripleReconnectNoDupNoReorder kills the connection three times
// mid-stream and asserts NetSeq replay/dedup still delivers every frame
// exactly once, in order, across the repeated session resumptions.
func TestEndpointTripleReconnectNoDupNoReorder(t *testing.T) {
	const msgs = 80
	drops := &dropAt{at: map[uint64]bool{7: true, 23: true, 51: true}}
	eps, sinks := startGroup(t, 2, func(proc int, cfg *Config) {
		if proc == 1 {
			cfg.Fault = drops
		}
	})
	for k := 0; k < msgs; k++ {
		if err := eps[1].Send(0, &Frame{Type: TypeData, Seq: uint64(k)}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	got := sinks[0].waitFrames(t, 1, msgs, 10*time.Second)
	// Exactly msgs frames: any duplicate surviving dedup would overshoot.
	time.Sleep(100 * time.Millisecond) // let stragglers (if any) arrive
	sinks[0].mu.Lock()
	total := len(sinks[0].frames[1])
	sinks[0].mu.Unlock()
	if total != msgs {
		t.Fatalf("delivered %d frames, want exactly %d (duplicate past dedup?)", total, msgs)
	}
	for k, f := range got[:msgs] {
		if f.Seq != uint64(k) {
			t.Fatalf("frame %d: got seq %d (dup or reorder across resumptions)", k, f.Seq)
		}
	}
	if h := drops.hits.Load(); h != 3 {
		t.Fatalf("only %d of 3 drops fired", h)
	}
	if eps[0].PeerDead(1) || eps[1].PeerDead(0) {
		t.Fatal("transient triple drop escalated to a dead verdict")
	}
	if s := eps[1].Stats(); s.Reconnects < 3 {
		t.Fatalf("Reconnects = %d, want >= 3", s.Reconnects)
	}
}
