package wire

import (
	"crypto/hmac"
	crand "crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrPeerDead is returned by Send once the failure detector has declared the
// peer process dead. The verdict is final for the endpoint's lifetime: a dead
// peer's ranks are re-homed by a world epoch rebuild, never resumed.
var ErrPeerDead = errors.New("wire: peer process dead")

// ErrAuth marks a failed handshake authentication: the peer presented a
// wrong or missing proof for the world's shared secret, or rejected ours.
// The verdict is permanent for the session — an auth failure is a
// configuration or security problem, so it is reported (OnReject, Stats)
// and the dialer stops redialing instead of retrying into the same wall.
var ErrAuth = errors.New("wire: authentication rejected")

// ErrHandshake marks a handshake that went silent: an accepted connection
// that never produced a hello (or auth proof) within HandshakeTimeout. The
// connection is dropped so a stalled or hostile dialer cannot pin the
// accept path.
var ErrHandshake = errors.New("wire: handshake deadline exceeded")

// ErrSealed marks a handshake refused because the peer has already declared
// this process dead. Dead verdicts are final, so a process restarted under a
// reused proc id cannot rejoin a live world — it must wait for the next one.
var ErrSealed = errors.New("wire: session sealed by peer dead verdict")

// FaultHook lets the fault-injection layer perturb the socket transport.
// OnConnSend is consulted before each outbound data-plane frame on a peer
// session, with idx counting data frames sent to that peer (0-based).
// Control-plane and session-internal frames are never faulted.
type FaultHook interface {
	OnConnSend(local, peer int, idx uint64) ConnFault
}

// ConnFault is a network fault verdict: Hang pauses the sender's write pump
// for the duration (missed heartbeats, peer suspects and redials); Drop
// closes the connection before the frame is written (the frame stays in the
// replay buffer and is retransmitted after reconnect).
type ConnFault struct {
	Hang time.Duration
	Drop bool
}

// Stats is a snapshot of the endpoint's transport counters, surfaced into
// the report's resilience section.
type Stats struct {
	HeartbeatsSent    uint64
	HeartbeatsRecv    uint64
	Reconnects        uint64
	PeersLost         uint64
	FramesResent      uint64
	BytesSent         uint64
	BytesRecv         uint64
	AuthRejects       uint64 // handshakes refused (or refused to us) over the shared secret
	HandshakeTimeouts uint64 // accepted conns dropped for handshake silence
}

// Config wires up an Endpoint. Proc indexes Addrs; Addrs holds every
// process's listen address ("unix:/path" or "tcp:host:port"), identical
// across the group. Zero durations take the defaults noted per field.
type Config struct {
	Proc    int
	Addrs   []string
	Cluster string

	// OnFrame delivers each in-order, deduplicated data/control/fence frame.
	// Called from the session's reader goroutine; the frame does not alias
	// any internal buffer and may be retained.
	OnFrame func(peer int, f *Frame)
	// OnPeerDead fires exactly once per peer when the failure detector
	// declares it dead (no contact for PeerDeadAfter despite reconnects).
	OnPeerDead func(peer int)
	// OnReject reports a refused handshake: err is ErrAuth (wrong/missing
	// secret), ErrSealed (peer holds a dead verdict for us), or ErrHandshake
	// (accepted conn went silent before authenticating). peer is -1 when the
	// dialer never identified itself. Called from session goroutines.
	OnReject func(peer int, err error)
	Fault    FaultHook

	// Secret, when non-empty, turns the hello exchange into a mutual
	// HMAC-SHA256 challenge–response: both sides send a nonce in their hello
	// and must present a proof keyed by the per-world secret before any
	// frame is delivered. A peer with a missing or different secret is
	// rejected with ErrAuth — reported, never retried.
	Secret string

	HeartbeatEvery   time.Duration // ping cadence; default 250ms
	PeerDeadAfter    time.Duration // silence budget before a dead verdict; default 3s
	DialTimeout      time.Duration // per dial attempt; default 1s
	WriteTimeout     time.Duration // per frame write; default 2s
	BackoffBase      time.Duration // first redial delay; default 25ms
	BackoffCap       time.Duration // redial delay ceiling; default 500ms
	HandshakeTimeout time.Duration // hello+auth must complete within this; default DialTimeout
}

func (c *Config) fillDefaults() {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 250 * time.Millisecond
	}
	if c.PeerDeadAfter <= 0 {
		c.PeerDeadAfter = 3 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 2 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 500 * time.Millisecond
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = c.DialTimeout
	}
}

// SplitAddr parses "unix:/path" or "tcp:host:port" into a net network and
// address pair.
func SplitAddr(addr string) (network, address string, err error) {
	switch {
	case strings.HasPrefix(addr, "unix:"):
		return "unix", addr[len("unix:"):], nil
	case strings.HasPrefix(addr, "tcp:"):
		return "tcp", addr[len("tcp:"):], nil
	default:
		return "", "", fmt.Errorf("wire: address %q: want unix:PATH or tcp:HOST:PORT", addr)
	}
}

// Endpoint is one process's presence in the group: a listener plus one
// session per peer. The pair (i, j) keeps a single connection, dialed by the
// higher-numbered process; the dialer owns redial, the acceptor re-adopts
// incoming connections into the existing session, so replay state survives
// any number of reconnects on either side.
type Endpoint struct {
	cfg      Config
	listener net.Listener
	sessions []*session // indexed by peer proc; nil at Proc
	epoch    atomic.Uint32
	closing  atomic.Bool // shutdown entered (guards double Close/Abort)
	closed   atomic.Bool // teardown begun: pumps and monitors stop
	wg       sync.WaitGroup

	heartbeatsSent    atomic.Uint64
	heartbeatsRecv    atomic.Uint64
	reconnects        atomic.Uint64
	peersLost         atomic.Uint64
	framesResent      atomic.Uint64
	bytesSent         atomic.Uint64
	bytesRecv         atomic.Uint64
	authRejects       atomic.Uint64
	handshakeTimeouts atomic.Uint64
}

// outFrame is a numbered frame parked in the replay buffer until acked.
type outFrame struct {
	seq   uint64
	epoch uint32
	buf   []byte
}

type session struct {
	ep     *Endpoint
	peer   int
	dialer bool

	mu          sync.Mutex
	cond        *sync.Cond
	conn        net.Conn
	connected   bool // conn non-nil and past the hello exchange
	everConn    bool
	pending     []uint64 // netseqs queued for (re)transmission, in order
	frames      map[uint64]*outFrame
	nextNetSeq  uint64
	lastDeliv   uint64 // highest in-order NetSeq delivered to OnFrame
	peerAcked   uint64
	lastContact time.Time
	dead        bool
	peerClosed  bool // received Bye: graceful exit, not a failure
	authFailed  bool // handshake auth rejected: permanent, stops the dial loop
	dataSent    uint64

	writeMu sync.Mutex // serializes writes to conn (pump vs heartbeats)
}

// Listen binds cfg.Addrs[cfg.Proc], starts the accept loop, and begins
// dialing lower-numbered peers. It returns immediately; sessions connect in
// the background (Send queues until they do).
func Listen(cfg Config) (*Endpoint, error) {
	cfg.fillDefaults()
	if cfg.Proc < 0 || cfg.Proc >= len(cfg.Addrs) {
		return nil, fmt.Errorf("wire: proc %d out of range for %d addrs", cfg.Proc, len(cfg.Addrs))
	}
	network, address, err := SplitAddr(cfg.Addrs[cfg.Proc])
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen(network, address)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", cfg.Addrs[cfg.Proc], err)
	}
	ep := &Endpoint{cfg: cfg, listener: ln}
	ep.sessions = make([]*session, len(cfg.Addrs))
	for p := range cfg.Addrs {
		if p == cfg.Proc {
			continue
		}
		s := &session{
			ep:          ep,
			peer:        p,
			dialer:      cfg.Proc > p,
			frames:      make(map[uint64]*outFrame),
			lastContact: time.Now(),
		}
		s.cond = sync.NewCond(&s.mu)
		ep.sessions[p] = s
		ep.wg.Add(2)
		go s.sendLoop()
		go s.monitor()
		if s.dialer {
			ep.wg.Add(1)
			go s.dialLoop()
		}
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// Proc returns this endpoint's process index.
func (ep *Endpoint) Proc() int { return ep.cfg.Proc }

// Procs returns the process-group size.
func (ep *Endpoint) Procs() int { return len(ep.cfg.Addrs) }

// SetEpoch stamps subsequent frames with the new world epoch and discards
// queued frames from older epochs — after a rebuild they address collectives
// that no longer exist, so retransmitting them is pure waste.
func (ep *Endpoint) SetEpoch(e uint32) {
	ep.epoch.Store(e)
	for _, s := range ep.sessions {
		if s == nil {
			continue
		}
		s.mu.Lock()
		live := s.pending[:0]
		for _, seq := range s.pending {
			if of := s.frames[seq]; of != nil && of.epoch >= e {
				live = append(live, seq)
			} else {
				delete(s.frames, seq)
			}
		}
		s.pending = live
		for seq, of := range s.frames {
			if of.epoch < e {
				delete(s.frames, seq)
			}
		}
		s.mu.Unlock()
	}
}

// Stats snapshots the transport counters.
func (ep *Endpoint) Stats() Stats {
	return Stats{
		HeartbeatsSent: ep.heartbeatsSent.Load(),
		HeartbeatsRecv: ep.heartbeatsRecv.Load(),
		Reconnects:     ep.reconnects.Load(),
		PeersLost:      ep.peersLost.Load(),
		FramesResent:      ep.framesResent.Load(),
		BytesSent:         ep.bytesSent.Load(),
		BytesRecv:         ep.bytesRecv.Load(),
		AuthRejects:       ep.authRejects.Load(),
		HandshakeTimeouts: ep.handshakeTimeouts.Load(),
	}
}

// Send queues a data/control/fence frame to peer, assigning its NetSeq. The
// caller stamps Epoch (a fence may legitimately carry an epoch the endpoint's
// replay-pruning counter has not advanced to yet). The frame is retained in
// the replay buffer until the peer acks it, surviving reconnects. Returns
// ErrPeerDead once the peer is declared dead.
func (ep *Endpoint) Send(peer int, f *Frame) error {
	s := ep.sessions[peer]
	if s == nil {
		return fmt.Errorf("wire: send to self (proc %d)", peer)
	}
	if f.Type != TypeData && f.Type != TypeControl && f.Type != TypeFence {
		return fmt.Errorf("wire: Send only carries data/control/fence frames, got type %d", f.Type)
	}
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return fmt.Errorf("%w (proc %d)", ErrPeerDead, peer)
	}
	s.nextNetSeq++
	f.NetSeq = s.nextNetSeq
	of := &outFrame{seq: f.NetSeq, epoch: f.Epoch, buf: AppendFrame(nil, f)}
	s.frames[of.seq] = of
	s.pending = append(s.pending, of.seq)
	s.cond.Broadcast()
	s.mu.Unlock()
	return nil
}

// PeerDead reports whether the failure detector has declared peer dead.
func (ep *Endpoint) PeerDead(peer int) bool {
	s := ep.sessions[peer]
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dead
}

// Close drains queued frames to the peers that can still receive them,
// sends Bye, shuts the listener and all sessions down, and waits for the
// pumps to exit.
func (ep *Endpoint) Close() error { return ep.shutdown(true) }

// Abort tears the endpoint down without the Bye courtesy — the peers see a
// silent disappearance, exactly as if the process had been SIGKILLed. Used
// by the in-test socket worlds to exercise the failure detector without
// spawning real processes.
func (ep *Endpoint) Abort() error { return ep.shutdown(false) }

func (ep *Endpoint) shutdown(sayBye bool) error {
	if !ep.closing.CompareAndSwap(false, true) {
		return nil
	}
	if sayBye {
		// Drain before closing anything: a process can finish its own
		// schedule (it has every peer's contributions) while its final
		// frames still sit in the send queues or ride the wire unacked.
		// Tearing the connections down now would destroy them, and the
		// slower peers would wait forever for contributions that no longer
		// exist anywhere. The pumps and heartbeats are still running here
		// (closed is not yet set), so queued frames flush and the peers'
		// acks retire them; the wait is bounded for peers that are gone.
		ep.drain(time.Now().Add(drainTimeout))
	}
	ep.closed.Store(true)
	if sayBye {
		bye := AppendFrame(nil, &Frame{Type: TypeBye})
		for _, s := range ep.sessions {
			if s == nil {
				continue
			}
			s.mu.Lock()
			c := s.conn
			s.mu.Unlock()
			if c != nil {
				s.writeMu.Lock()
				c.SetWriteDeadline(time.Now().Add(200 * time.Millisecond))
				c.Write(bye)
				s.writeMu.Unlock()
			}
		}
	}
	ep.listener.Close()
	for _, s := range ep.sessions {
		if s == nil {
			continue
		}
		s.mu.Lock()
		if s.conn != nil {
			s.conn.Close()
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}
	ep.wg.Wait()
	return nil
}

// drainTimeout bounds how long Close waits for peers to acknowledge every
// queued frame. The normal cost is one heartbeat interval (acks ride pings);
// the ceiling is only hit when a peer vanished without a verdict yet.
const drainTimeout = 2 * time.Second

// drain waits until every reachable peer has acknowledged every frame this
// endpoint ever queued for it (the replay buffer is empty), or the deadline
// passes. Peers that are dead, said Bye, or never connected cannot make
// progress and are not waited for.
func (ep *Endpoint) drain(deadline time.Time) {
	for time.Now().Before(deadline) {
		busy := false
		for _, s := range ep.sessions {
			if s == nil {
				continue
			}
			s.mu.Lock()
			if len(s.frames) > 0 && s.everConn && !s.dead && !s.peerClosed {
				busy = true
			}
			s.mu.Unlock()
			if busy {
				break
			}
		}
		if !busy {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// nonceLen is the challenge size each side contributes to the authenticated
// handshake.
const nonceLen = 16

// Reject reasons (first payload byte of a TypeReject frame).
const (
	rejectAuth   uint8 = 1 // wrong or missing shared-secret proof
	rejectSealed uint8 = 2 // acceptor holds a final dead verdict for the dialer
)

// helloPayload encodes proc id, challenge nonce (empty without a secret) and
// cluster id for the handshake frame.
func helloPayload(proc int, nonce []byte, cluster string) []byte {
	b := binary.LittleEndian.AppendUint32(nil, uint32(proc))
	b = append(b, uint8(len(nonce)))
	b = append(b, nonce...)
	return append(b, cluster...)
}

func parseHello(f *Frame) (proc int, nonce []byte, cluster string, err error) {
	if f.Type != TypeHello || len(f.Payload) < 5 {
		return 0, nil, "", fmt.Errorf("%w: malformed hello", ErrFrame)
	}
	n := int(f.Payload[4])
	if len(f.Payload) < 5+n {
		return 0, nil, "", fmt.Errorf("%w: malformed hello", ErrFrame)
	}
	return int(binary.LittleEndian.Uint32(f.Payload[:4])),
		f.Payload[5 : 5+n], string(f.Payload[5+n:]), nil
}

// newNonce draws a fresh random handshake challenge.
func newNonce() []byte {
	b := make([]byte, nonceLen)
	if _, err := crand.Read(b); err != nil {
		panic("wire: no entropy for handshake nonce: " + err.Error())
	}
	return b
}

// Handshake proof roles: each side's MAC covers a distinct role byte so an
// attacker cannot reflect one proof back as the other.
const (
	roleDialer   byte = 'D'
	roleAcceptor byte = 'A'
)

// authProof computes the handshake MAC: HMAC-SHA256 over the role, the
// cluster id, both proc ids and both nonces, keyed by the shared secret.
// Every variable-length field is length-prefixed so no two transcripts
// collide.
func authProof(secret, cluster string, dialer, acceptor int, dialerNonce, acceptorNonce []byte, role byte) []byte {
	mac := hmac.New(sha256.New, []byte(secret))
	mac.Write([]byte{'G', 'W', 'F', '1', role})
	var lenb [4]byte
	writeField := func(b []byte) {
		binary.LittleEndian.PutUint32(lenb[:], uint32(len(b)))
		mac.Write(lenb[:])
		mac.Write(b)
	}
	writeField([]byte(cluster))
	binary.LittleEndian.PutUint32(lenb[:], uint32(dialer))
	mac.Write(lenb[:])
	binary.LittleEndian.PutUint32(lenb[:], uint32(acceptor))
	mac.Write(lenb[:])
	writeField(dialerNonce)
	writeField(acceptorNonce)
	return mac.Sum(nil)
}

// writeReject refuses a handshake with a typed reason; best-effort.
func (ep *Endpoint) writeReject(c net.Conn, reason uint8) {
	c.SetWriteDeadline(time.Now().Add(ep.cfg.WriteTimeout))
	c.Write(AppendFrame(nil, &Frame{Type: TypeReject, Payload: []byte{reason}}))
}

func (ep *Endpoint) reject(peer int, err error) {
	if ep.cfg.OnReject != nil {
		ep.cfg.OnReject(peer, err)
	}
}

// declareDead latches the final dead verdict for the peer (idempotent) and
// fires OnPeerDead exactly once.
func (s *session) declareDead() {
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return
	}
	s.dead = true
	c := s.conn
	s.cond.Broadcast()
	s.mu.Unlock()
	if c != nil {
		c.Close()
	}
	s.ep.peersLost.Add(1)
	if s.ep.cfg.OnPeerDead != nil {
		s.ep.cfg.OnPeerDead(s.peer)
	}
}

// acceptLoop adopts incoming connections: the first frame must be a Hello
// naming the peer proc within the handshake deadline; with a shared secret
// the hello must then survive the challenge–response before the conn is
// installed into the session.
func (ep *Endpoint) acceptLoop() {
	defer ep.wg.Done()
	for {
		c, err := ep.listener.Accept()
		if err != nil {
			return // listener closed
		}
		ep.wg.Add(1)
		go func(c net.Conn) {
			defer ep.wg.Done()
			start := time.Now()
			c.SetReadDeadline(start.Add(ep.cfg.HandshakeTimeout))
			hello, err := ReadFrame(c)
			if err != nil {
				// A connected-but-silent dialer must not pin the accept
				// path: the deadline converts it into a typed, counted
				// rejection. (ReadFrame flattens the timeout, so the
				// elapsed clock tells silence apart from a torn frame.)
				if time.Since(start) >= ep.cfg.HandshakeTimeout {
					ep.handshakeTimeouts.Add(1)
					ep.reject(-1, ErrHandshake)
				}
				c.Close()
				return
			}
			peer, nonce, cluster, err := parseHello(hello)
			if err != nil || cluster != ep.cfg.Cluster ||
				peer < 0 || peer >= len(ep.sessions) || ep.sessions[peer] == nil {
				c.Close()
				return
			}
			ep.sessions[peer].adopt(c, hello, nonce)
		}(c)
	}
}

// jittered draws a uniform sleep from [d/2, d]: survivors of a dead
// supernode all redial the same listener, and a shared deterministic ladder
// would make them thunder-herd it on the same schedule.
func jittered(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := int64(d) / 2
	return time.Duration(half + rand.Int64N(half+1))
}

// authFail latches the permanent auth verdict (reported, not retried): the
// dial loop stops and the failure detector's dead verdict fires so the comm
// layer re-homes the peer's ranks instead of waiting forever.
func (s *session) authFail(err error) {
	s.mu.Lock()
	already := s.authFailed
	s.authFailed = true
	s.mu.Unlock()
	if already {
		return
	}
	s.ep.authRejects.Add(1)
	s.ep.reject(s.peer, err)
	s.declareDead()
}

// dialLoop (dialer side only) keeps the session connected: dial with capped
// exponential backoff plus jitter whenever the conn is down, exchange hellos
// (and auth proofs when the world has a secret), adopt. An auth rejection is
// permanent and exits the loop.
func (s *session) dialLoop() {
	defer s.ep.wg.Done()
	network, address, err := SplitAddr(s.ep.cfg.Addrs[s.peer])
	if err != nil {
		return
	}
	backoff := s.ep.cfg.BackoffBase
	for {
		s.mu.Lock()
		for s.connected && !s.dead && !s.peerClosed && !s.ep.closed.Load() {
			backoff = s.ep.cfg.BackoffBase // healthy conn resets the ladder
			s.cond.Wait()
		}
		stop := s.dead || s.peerClosed || s.authFailed || s.ep.closed.Load()
		s.mu.Unlock()
		if stop {
			return
		}
		c, err := net.DialTimeout(network, address, s.ep.cfg.DialTimeout)
		if err != nil {
			time.Sleep(jittered(backoff))
			backoff *= 2
			if backoff > s.ep.cfg.BackoffCap {
				backoff = s.ep.cfg.BackoffCap
			}
			continue
		}
		// Handshake: our hello first (it identifies us to the acceptor and
		// carries our challenge nonce), then wait for the peer's hello
		// naming its resume point and its own nonce.
		s.mu.Lock()
		acked := s.lastDeliv
		s.mu.Unlock()
		var myNonce []byte
		if s.ep.cfg.Secret != "" {
			myNonce = newNonce()
		}
		my := &Frame{Type: TypeHello, Epoch: s.ep.epoch.Load(), Seq: acked,
			Payload: helloPayload(s.ep.cfg.Proc, myNonce, s.ep.cfg.Cluster)}
		c.SetWriteDeadline(time.Now().Add(s.ep.cfg.WriteTimeout))
		if _, err := c.Write(AppendFrame(nil, my)); err != nil {
			c.Close()
			continue
		}
		c.SetReadDeadline(time.Now().Add(s.ep.cfg.HandshakeTimeout))
		theirs, err := ReadFrame(c)
		if err != nil {
			c.Close()
			continue
		}
		if theirs.Type == TypeReject {
			c.Close()
			if s.handleReject(theirs) {
				return
			}
			continue
		}
		_, theirNonce, cluster, err := parseHello(theirs)
		if err != nil || cluster != s.ep.cfg.Cluster {
			c.Close()
			continue
		}
		if s.ep.cfg.Secret != "" {
			// Challenge–response: the acceptor proves knowledge of the
			// secret first (it answered our nonce), then we answer its.
			proof, err := ReadFrame(c)
			if err != nil {
				c.Close()
				continue
			}
			if proof.Type == TypeReject {
				c.Close()
				if s.handleReject(proof) {
					return
				}
				continue
			}
			want := authProof(s.ep.cfg.Secret, s.ep.cfg.Cluster,
				s.ep.cfg.Proc, s.peer, myNonce, theirNonce, roleAcceptor)
			if proof.Type != TypeAuth || !hmac.Equal(proof.Payload, want) {
				// A peer that skips or flubs the proof runs a different
				// secret (or none): a config split, not a transient.
				c.Close()
				s.authFail(fmt.Errorf("%w: peer %d presented no valid proof", ErrAuth, s.peer))
				return
			}
			mine := authProof(s.ep.cfg.Secret, s.ep.cfg.Cluster,
				s.ep.cfg.Proc, s.peer, myNonce, theirNonce, roleDialer)
			c.SetWriteDeadline(time.Now().Add(s.ep.cfg.WriteTimeout))
			if _, err := c.Write(AppendFrame(nil, &Frame{Type: TypeAuth, Payload: mine})); err != nil {
				c.Close()
				continue
			}
		}
		s.install(c, theirs, false)
	}
}

// handleReject reacts to a TypeReject during the dial handshake; reports
// whether the dial loop must stop for good.
func (s *session) handleReject(f *Frame) bool {
	reason := uint8(0)
	if len(f.Payload) > 0 {
		reason = f.Payload[0]
	}
	switch reason {
	case rejectSealed:
		// The peer has latched a dead verdict for our proc id: the world
		// has moved on without us and the verdict is final. Mirror it.
		s.ep.reject(s.peer, fmt.Errorf("%w (proc %d)", ErrSealed, s.peer))
		s.declareDead()
		return true
	default: // rejectAuth and anything unrecognized: do not retry
		s.authFail(fmt.Errorf("%w: rejected by peer %d", ErrAuth, s.peer))
		return true
	}
}

// adopt installs an accepted connection (acceptor side): refuse sealed
// sessions, reply with our own hello, run the challenge–response when the
// world has a secret, then hand off to install.
func (s *session) adopt(c net.Conn, theirHello *Frame, theirNonce []byte) {
	s.mu.Lock()
	acked := s.lastDeliv
	dead := s.dead
	s.mu.Unlock()
	if s.ep.closed.Load() {
		c.Close()
		return
	}
	if dead {
		// A restarted process reusing the proc id must learn quickly that
		// the verdict was final instead of redialing into silence.
		s.ep.writeReject(c, rejectSealed)
		c.Close()
		return
	}
	secret := s.ep.cfg.Secret
	if secret != "" && len(theirNonce) == 0 {
		s.ep.authRejects.Add(1)
		s.ep.reject(s.peer, fmt.Errorf("%w: peer %d sent no challenge", ErrAuth, s.peer))
		s.ep.writeReject(c, rejectAuth)
		c.Close()
		return
	}
	var myNonce []byte
	if secret != "" {
		myNonce = newNonce()
	}
	my := &Frame{Type: TypeHello, Epoch: s.ep.epoch.Load(), Seq: acked,
		Payload: helloPayload(s.ep.cfg.Proc, myNonce, s.ep.cfg.Cluster)}
	c.SetWriteDeadline(time.Now().Add(s.ep.cfg.WriteTimeout))
	if _, err := c.Write(AppendFrame(nil, my)); err != nil {
		c.Close()
		return
	}
	if secret != "" {
		// Prove ourselves first (answering the dialer's nonce), then hold
		// the dialer to its own proof under the handshake deadline.
		mine := authProof(secret, s.ep.cfg.Cluster, s.peer, s.ep.cfg.Proc,
			theirNonce, myNonce, roleAcceptor)
		c.SetWriteDeadline(time.Now().Add(s.ep.cfg.WriteTimeout))
		if _, err := c.Write(AppendFrame(nil, &Frame{Type: TypeAuth, Payload: mine})); err != nil {
			c.Close()
			return
		}
		start := time.Now()
		c.SetReadDeadline(start.Add(s.ep.cfg.HandshakeTimeout))
		proof, err := ReadFrame(c)
		if err != nil {
			if time.Since(start) >= s.ep.cfg.HandshakeTimeout {
				s.ep.handshakeTimeouts.Add(1)
				s.ep.reject(s.peer, fmt.Errorf("%w: peer %d went silent before proving", ErrHandshake, s.peer))
			}
			c.Close()
			return
		}
		want := authProof(secret, s.ep.cfg.Cluster, s.peer, s.ep.cfg.Proc,
			theirNonce, myNonce, roleDialer)
		if proof.Type != TypeAuth || !hmac.Equal(proof.Payload, want) {
			s.ep.authRejects.Add(1)
			s.ep.reject(s.peer, fmt.Errorf("%w: peer %d failed challenge", ErrAuth, s.peer))
			s.ep.writeReject(c, rejectAuth)
			c.Close()
			return
		}
	}
	s.install(c, theirHello, true)
}

// install makes c the session's live connection: prune acked replay entries,
// re-enqueue everything the peer has not seen, spawn the reader.
func (s *session) install(c net.Conn, theirHello *Frame, accepted bool) {
	s.mu.Lock()
	if s.dead || s.ep.closed.Load() {
		s.mu.Unlock()
		c.Close()
		return
	}
	if s.conn != nil {
		s.conn.Close()
	}
	s.conn = c
	s.connected = true
	s.lastContact = time.Now()
	if s.everConn {
		s.ep.reconnects.Add(1)
	}
	s.everConn = true
	s.ackTo(theirHello.Seq)
	// Session resumption: rebuild the pending queue as every unacked frame,
	// oldest first. The receiver dedupes on NetSeq, so frames that were
	// in flight when the old conn died are retransmitted harmlessly.
	resent := uint64(0)
	inPending := make(map[uint64]bool, len(s.pending))
	for _, seq := range s.pending {
		inPending[seq] = true
	}
	for seq := range s.frames {
		if !inPending[seq] {
			s.pending = append(s.pending, seq)
			resent++
		}
	}
	if resent > 0 {
		sortSeqs(s.pending)
		s.ep.framesResent.Add(resent)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.ep.wg.Add(1)
	go s.readLoop(c)
}

// ackTo prunes replay state the peer has confirmed. Caller holds s.mu.
func (s *session) ackTo(acked uint64) {
	if acked <= s.peerAcked {
		return
	}
	s.peerAcked = acked
	for seq := range s.frames {
		if seq <= acked {
			delete(s.frames, seq)
		}
	}
	live := s.pending[:0]
	for _, seq := range s.pending {
		if seq > acked {
			live = append(live, seq)
		}
	}
	s.pending = live
}

func sortSeqs(a []uint64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// sendLoop is the session's write pump: pop the next pending netseq, apply
// the fault hook, write with a deadline. A write failure tears the conn down
// (the dial loop or the peer's redial recovers it) and leaves the frame in
// the replay buffer for retransmission.
func (s *session) sendLoop() {
	defer s.ep.wg.Done()
	for {
		s.mu.Lock()
		for (len(s.pending) == 0 || !s.connected) && !s.dead && !s.ep.closed.Load() {
			s.cond.Wait()
		}
		if s.dead || s.ep.closed.Load() {
			s.mu.Unlock()
			return
		}
		seq := s.pending[0]
		s.pending = s.pending[1:]
		of := s.frames[seq]
		c := s.conn
		var fault ConnFault
		if of != nil && s.ep.cfg.Fault != nil && of.buf[4] == TypeData {
			idx := s.dataSent
			s.dataSent++
			fault = s.ep.cfg.Fault.OnConnSend(s.ep.cfg.Proc, s.peer, idx)
		}
		s.mu.Unlock()
		if of == nil { // acked while queued
			continue
		}
		if fault.Hang > 0 {
			time.Sleep(fault.Hang)
		}
		if fault.Drop {
			s.teardown(c)
			// The frame stays unacked; requeue it for after reconnect.
			s.mu.Lock()
			if _, live := s.frames[seq]; live {
				s.pending = append([]uint64{seq}, s.pending...)
			}
			s.mu.Unlock()
			continue
		}
		s.writeMu.Lock()
		c.SetWriteDeadline(time.Now().Add(s.ep.cfg.WriteTimeout))
		_, err := c.Write(of.buf)
		s.writeMu.Unlock()
		if err != nil {
			s.teardown(c)
			s.mu.Lock()
			if _, live := s.frames[seq]; live {
				s.pending = append([]uint64{seq}, s.pending...)
			}
			s.mu.Unlock()
			continue
		}
		s.ep.bytesSent.Add(uint64(len(of.buf)))
	}
}

// teardown drops c if it is still the session's live conn and wakes the
// dial loop.
func (s *session) teardown(c net.Conn) {
	c.Close()
	s.mu.Lock()
	if s.conn == c {
		s.conn = nil
		s.connected = false
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// readLoop drains one connection: heartbeat acks, Bye, and in-order
// deduplicated delivery of numbered frames. The read deadline doubles as the
// per-connection liveness check — a healthy peer pings every HeartbeatEvery,
// so three silent intervals mean the conn is suspect and gets torn down
// (reconnect, not death; the monitor issues dead verdicts on total silence).
func (s *session) readLoop(c net.Conn) {
	defer s.ep.wg.Done()
	readTO := 3 * s.ep.cfg.HeartbeatEvery
	for {
		c.SetReadDeadline(time.Now().Add(readTO))
		f, err := ReadFrame(c)
		if err != nil {
			s.teardown(c)
			return
		}
		s.ep.bytesRecv.Add(uint64(headerLen + len(f.Payload)))
		switch f.Type {
		case TypePing:
			s.ep.heartbeatsRecv.Add(1)
			s.mu.Lock()
			s.lastContact = time.Now()
			s.ackTo(f.Seq)
			s.mu.Unlock()
		case TypeBye:
			s.mu.Lock()
			s.peerClosed = true
			s.lastContact = time.Now()
			s.cond.Broadcast()
			s.mu.Unlock()
			s.teardown(c)
			return
		case TypeData, TypeControl, TypeFence:
			s.mu.Lock()
			s.lastContact = time.Now()
			fresh := f.NetSeq > s.lastDeliv
			if fresh {
				s.lastDeliv = f.NetSeq
			}
			s.mu.Unlock()
			if fresh && s.ep.cfg.OnFrame != nil {
				s.ep.cfg.OnFrame(s.peer, f)
			}
		case TypeHello:
			// Mid-stream hello: treat as an ack refresh.
			s.mu.Lock()
			s.lastContact = time.Now()
			s.ackTo(f.Seq)
			s.mu.Unlock()
		case TypeAuth, TypeReject:
			// Handshake frames have no meaning once the session is
			// installed; refresh liveness and move on.
			s.mu.Lock()
			s.lastContact = time.Now()
			s.mu.Unlock()
		}
	}
}

// monitor is the session's heartbeat pump and failure detector: ping every
// interval (carrying our delivery ack), and declare the peer dead after
// PeerDeadAfter of total silence — redials included, so a transient drop
// that reconnects in time never escalates to a dead verdict.
func (s *session) monitor() {
	defer s.ep.wg.Done()
	t := time.NewTicker(s.ep.cfg.HeartbeatEvery)
	defer t.Stop()
	for range t.C {
		if s.ep.closed.Load() {
			return
		}
		s.mu.Lock()
		if s.dead {
			s.mu.Unlock()
			return
		}
		// A peer that said Bye stops being pinged (its conn is gone) but the
		// silence clock keeps running: if this process still needs its
		// contributions — the peer exited early, or Close raced a straggler
		// past the drain window — the verdict below converts the graceful
		// exit into the same dead-peer signal a crash would have produced,
		// instead of an unbounded wait.
		silent := time.Since(s.lastContact)
		c := s.conn
		acked := s.lastDeliv
		if silent > s.ep.cfg.PeerDeadAfter {
			s.dead = true
			s.cond.Broadcast()
			s.mu.Unlock()
			if c != nil {
				c.Close()
			}
			s.ep.peersLost.Add(1)
			if s.ep.cfg.OnPeerDead != nil {
				s.ep.cfg.OnPeerDead(s.peer)
			}
			return
		}
		s.mu.Unlock()
		if c == nil {
			continue
		}
		ping := AppendFrame(nil, &Frame{Type: TypePing, Epoch: s.ep.epoch.Load(), Seq: acked})
		s.writeMu.Lock()
		c.SetWriteDeadline(time.Now().Add(s.ep.cfg.WriteTimeout))
		_, err := c.Write(ping)
		s.writeMu.Unlock()
		if err != nil {
			s.teardown(c)
			continue
		}
		s.ep.heartbeatsSent.Add(1)
	}
}
