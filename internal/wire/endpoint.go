package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrPeerDead is returned by Send once the failure detector has declared the
// peer process dead. The verdict is final for the endpoint's lifetime: a dead
// peer's ranks are re-homed by a world epoch rebuild, never resumed.
var ErrPeerDead = errors.New("wire: peer process dead")

// FaultHook lets the fault-injection layer perturb the socket transport.
// OnConnSend is consulted before each outbound data-plane frame on a peer
// session, with idx counting data frames sent to that peer (0-based).
// Control-plane and session-internal frames are never faulted.
type FaultHook interface {
	OnConnSend(local, peer int, idx uint64) ConnFault
}

// ConnFault is a network fault verdict: Hang pauses the sender's write pump
// for the duration (missed heartbeats, peer suspects and redials); Drop
// closes the connection before the frame is written (the frame stays in the
// replay buffer and is retransmitted after reconnect).
type ConnFault struct {
	Hang time.Duration
	Drop bool
}

// Stats is a snapshot of the endpoint's transport counters, surfaced into
// the report's resilience section.
type Stats struct {
	HeartbeatsSent uint64
	HeartbeatsRecv uint64
	Reconnects     uint64
	PeersLost      uint64
	FramesResent   uint64
	BytesSent      uint64
	BytesRecv      uint64
}

// Config wires up an Endpoint. Proc indexes Addrs; Addrs holds every
// process's listen address ("unix:/path" or "tcp:host:port"), identical
// across the group. Zero durations take the defaults noted per field.
type Config struct {
	Proc    int
	Addrs   []string
	Cluster string

	// OnFrame delivers each in-order, deduplicated data/control/fence frame.
	// Called from the session's reader goroutine; the frame does not alias
	// any internal buffer and may be retained.
	OnFrame func(peer int, f *Frame)
	// OnPeerDead fires exactly once per peer when the failure detector
	// declares it dead (no contact for PeerDeadAfter despite reconnects).
	OnPeerDead func(peer int)
	Fault      FaultHook

	HeartbeatEvery time.Duration // ping cadence; default 250ms
	PeerDeadAfter  time.Duration // silence budget before a dead verdict; default 3s
	DialTimeout    time.Duration // per dial attempt; default 1s
	WriteTimeout   time.Duration // per frame write; default 2s
	BackoffBase    time.Duration // first redial delay; default 25ms
	BackoffCap     time.Duration // redial delay ceiling; default 500ms
}

func (c *Config) fillDefaults() {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 250 * time.Millisecond
	}
	if c.PeerDeadAfter <= 0 {
		c.PeerDeadAfter = 3 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 2 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 500 * time.Millisecond
	}
}

// SplitAddr parses "unix:/path" or "tcp:host:port" into a net network and
// address pair.
func SplitAddr(addr string) (network, address string, err error) {
	switch {
	case strings.HasPrefix(addr, "unix:"):
		return "unix", addr[len("unix:"):], nil
	case strings.HasPrefix(addr, "tcp:"):
		return "tcp", addr[len("tcp:"):], nil
	default:
		return "", "", fmt.Errorf("wire: address %q: want unix:PATH or tcp:HOST:PORT", addr)
	}
}

// Endpoint is one process's presence in the group: a listener plus one
// session per peer. The pair (i, j) keeps a single connection, dialed by the
// higher-numbered process; the dialer owns redial, the acceptor re-adopts
// incoming connections into the existing session, so replay state survives
// any number of reconnects on either side.
type Endpoint struct {
	cfg      Config
	listener net.Listener
	sessions []*session // indexed by peer proc; nil at Proc
	epoch    atomic.Uint32
	closing  atomic.Bool // shutdown entered (guards double Close/Abort)
	closed   atomic.Bool // teardown begun: pumps and monitors stop
	wg       sync.WaitGroup

	heartbeatsSent atomic.Uint64
	heartbeatsRecv atomic.Uint64
	reconnects     atomic.Uint64
	peersLost      atomic.Uint64
	framesResent   atomic.Uint64
	bytesSent      atomic.Uint64
	bytesRecv      atomic.Uint64
}

// outFrame is a numbered frame parked in the replay buffer until acked.
type outFrame struct {
	seq   uint64
	epoch uint32
	buf   []byte
}

type session struct {
	ep     *Endpoint
	peer   int
	dialer bool

	mu          sync.Mutex
	cond        *sync.Cond
	conn        net.Conn
	connected   bool // conn non-nil and past the hello exchange
	everConn    bool
	pending     []uint64 // netseqs queued for (re)transmission, in order
	frames      map[uint64]*outFrame
	nextNetSeq  uint64
	lastDeliv   uint64 // highest in-order NetSeq delivered to OnFrame
	peerAcked   uint64
	lastContact time.Time
	dead        bool
	peerClosed  bool // received Bye: graceful exit, not a failure
	dataSent    uint64

	writeMu sync.Mutex // serializes writes to conn (pump vs heartbeats)
}

// Listen binds cfg.Addrs[cfg.Proc], starts the accept loop, and begins
// dialing lower-numbered peers. It returns immediately; sessions connect in
// the background (Send queues until they do).
func Listen(cfg Config) (*Endpoint, error) {
	cfg.fillDefaults()
	if cfg.Proc < 0 || cfg.Proc >= len(cfg.Addrs) {
		return nil, fmt.Errorf("wire: proc %d out of range for %d addrs", cfg.Proc, len(cfg.Addrs))
	}
	network, address, err := SplitAddr(cfg.Addrs[cfg.Proc])
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen(network, address)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", cfg.Addrs[cfg.Proc], err)
	}
	ep := &Endpoint{cfg: cfg, listener: ln}
	ep.sessions = make([]*session, len(cfg.Addrs))
	for p := range cfg.Addrs {
		if p == cfg.Proc {
			continue
		}
		s := &session{
			ep:          ep,
			peer:        p,
			dialer:      cfg.Proc > p,
			frames:      make(map[uint64]*outFrame),
			lastContact: time.Now(),
		}
		s.cond = sync.NewCond(&s.mu)
		ep.sessions[p] = s
		ep.wg.Add(2)
		go s.sendLoop()
		go s.monitor()
		if s.dialer {
			ep.wg.Add(1)
			go s.dialLoop()
		}
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// Proc returns this endpoint's process index.
func (ep *Endpoint) Proc() int { return ep.cfg.Proc }

// Procs returns the process-group size.
func (ep *Endpoint) Procs() int { return len(ep.cfg.Addrs) }

// SetEpoch stamps subsequent frames with the new world epoch and discards
// queued frames from older epochs — after a rebuild they address collectives
// that no longer exist, so retransmitting them is pure waste.
func (ep *Endpoint) SetEpoch(e uint32) {
	ep.epoch.Store(e)
	for _, s := range ep.sessions {
		if s == nil {
			continue
		}
		s.mu.Lock()
		live := s.pending[:0]
		for _, seq := range s.pending {
			if of := s.frames[seq]; of != nil && of.epoch >= e {
				live = append(live, seq)
			} else {
				delete(s.frames, seq)
			}
		}
		s.pending = live
		for seq, of := range s.frames {
			if of.epoch < e {
				delete(s.frames, seq)
			}
		}
		s.mu.Unlock()
	}
}

// Stats snapshots the transport counters.
func (ep *Endpoint) Stats() Stats {
	return Stats{
		HeartbeatsSent: ep.heartbeatsSent.Load(),
		HeartbeatsRecv: ep.heartbeatsRecv.Load(),
		Reconnects:     ep.reconnects.Load(),
		PeersLost:      ep.peersLost.Load(),
		FramesResent:   ep.framesResent.Load(),
		BytesSent:      ep.bytesSent.Load(),
		BytesRecv:      ep.bytesRecv.Load(),
	}
}

// Send queues a data/control/fence frame to peer, assigning its NetSeq. The
// caller stamps Epoch (a fence may legitimately carry an epoch the endpoint's
// replay-pruning counter has not advanced to yet). The frame is retained in
// the replay buffer until the peer acks it, surviving reconnects. Returns
// ErrPeerDead once the peer is declared dead.
func (ep *Endpoint) Send(peer int, f *Frame) error {
	s := ep.sessions[peer]
	if s == nil {
		return fmt.Errorf("wire: send to self (proc %d)", peer)
	}
	if f.Type != TypeData && f.Type != TypeControl && f.Type != TypeFence {
		return fmt.Errorf("wire: Send only carries data/control/fence frames, got type %d", f.Type)
	}
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return fmt.Errorf("%w (proc %d)", ErrPeerDead, peer)
	}
	s.nextNetSeq++
	f.NetSeq = s.nextNetSeq
	of := &outFrame{seq: f.NetSeq, epoch: f.Epoch, buf: AppendFrame(nil, f)}
	s.frames[of.seq] = of
	s.pending = append(s.pending, of.seq)
	s.cond.Broadcast()
	s.mu.Unlock()
	return nil
}

// PeerDead reports whether the failure detector has declared peer dead.
func (ep *Endpoint) PeerDead(peer int) bool {
	s := ep.sessions[peer]
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dead
}

// Close drains queued frames to the peers that can still receive them,
// sends Bye, shuts the listener and all sessions down, and waits for the
// pumps to exit.
func (ep *Endpoint) Close() error { return ep.shutdown(true) }

// Abort tears the endpoint down without the Bye courtesy — the peers see a
// silent disappearance, exactly as if the process had been SIGKILLed. Used
// by the in-test socket worlds to exercise the failure detector without
// spawning real processes.
func (ep *Endpoint) Abort() error { return ep.shutdown(false) }

func (ep *Endpoint) shutdown(sayBye bool) error {
	if !ep.closing.CompareAndSwap(false, true) {
		return nil
	}
	if sayBye {
		// Drain before closing anything: a process can finish its own
		// schedule (it has every peer's contributions) while its final
		// frames still sit in the send queues or ride the wire unacked.
		// Tearing the connections down now would destroy them, and the
		// slower peers would wait forever for contributions that no longer
		// exist anywhere. The pumps and heartbeats are still running here
		// (closed is not yet set), so queued frames flush and the peers'
		// acks retire them; the wait is bounded for peers that are gone.
		ep.drain(time.Now().Add(drainTimeout))
	}
	ep.closed.Store(true)
	if sayBye {
		bye := AppendFrame(nil, &Frame{Type: TypeBye})
		for _, s := range ep.sessions {
			if s == nil {
				continue
			}
			s.mu.Lock()
			c := s.conn
			s.mu.Unlock()
			if c != nil {
				s.writeMu.Lock()
				c.SetWriteDeadline(time.Now().Add(200 * time.Millisecond))
				c.Write(bye)
				s.writeMu.Unlock()
			}
		}
	}
	ep.listener.Close()
	for _, s := range ep.sessions {
		if s == nil {
			continue
		}
		s.mu.Lock()
		if s.conn != nil {
			s.conn.Close()
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}
	ep.wg.Wait()
	return nil
}

// drainTimeout bounds how long Close waits for peers to acknowledge every
// queued frame. The normal cost is one heartbeat interval (acks ride pings);
// the ceiling is only hit when a peer vanished without a verdict yet.
const drainTimeout = 2 * time.Second

// drain waits until every reachable peer has acknowledged every frame this
// endpoint ever queued for it (the replay buffer is empty), or the deadline
// passes. Peers that are dead, said Bye, or never connected cannot make
// progress and are not waited for.
func (ep *Endpoint) drain(deadline time.Time) {
	for time.Now().Before(deadline) {
		busy := false
		for _, s := range ep.sessions {
			if s == nil {
				continue
			}
			s.mu.Lock()
			if len(s.frames) > 0 && s.everConn && !s.dead && !s.peerClosed {
				busy = true
			}
			s.mu.Unlock()
			if busy {
				break
			}
		}
		if !busy {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// helloPayload encodes proc id + cluster id for the handshake frame.
func helloPayload(proc int, cluster string) []byte {
	b := binary.LittleEndian.AppendUint32(nil, uint32(proc))
	return append(b, cluster...)
}

func parseHello(f *Frame) (proc int, cluster string, err error) {
	if f.Type != TypeHello || len(f.Payload) < 4 {
		return 0, "", fmt.Errorf("%w: malformed hello", ErrFrame)
	}
	return int(binary.LittleEndian.Uint32(f.Payload[:4])), string(f.Payload[4:]), nil
}

// acceptLoop adopts incoming connections: the first frame must be a Hello
// naming the peer proc; the conn is then installed into that session.
func (ep *Endpoint) acceptLoop() {
	defer ep.wg.Done()
	for {
		c, err := ep.listener.Accept()
		if err != nil {
			return // listener closed
		}
		ep.wg.Add(1)
		go func(c net.Conn) {
			defer ep.wg.Done()
			c.SetReadDeadline(time.Now().Add(ep.cfg.DialTimeout))
			hello, err := ReadFrame(c)
			if err != nil {
				c.Close()
				return
			}
			peer, cluster, err := parseHello(hello)
			if err != nil || cluster != ep.cfg.Cluster ||
				peer < 0 || peer >= len(ep.sessions) || ep.sessions[peer] == nil {
				c.Close()
				return
			}
			ep.sessions[peer].adopt(c, hello)
		}(c)
	}
}

// dialLoop (dialer side only) keeps the session connected: dial with capped
// exponential backoff whenever the conn is down, exchange hellos, adopt.
func (s *session) dialLoop() {
	defer s.ep.wg.Done()
	network, address, err := SplitAddr(s.ep.cfg.Addrs[s.peer])
	if err != nil {
		return
	}
	backoff := s.ep.cfg.BackoffBase
	for {
		s.mu.Lock()
		for s.connected && !s.dead && !s.peerClosed && !s.ep.closed.Load() {
			backoff = s.ep.cfg.BackoffBase // healthy conn resets the ladder
			s.cond.Wait()
		}
		stop := s.dead || s.peerClosed || s.ep.closed.Load()
		s.mu.Unlock()
		if stop {
			return
		}
		c, err := net.DialTimeout(network, address, s.ep.cfg.DialTimeout)
		if err != nil {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > s.ep.cfg.BackoffCap {
				backoff = s.ep.cfg.BackoffCap
			}
			continue
		}
		// Handshake: our hello first (it identifies us to the acceptor),
		// then wait for the peer's hello naming its resume point.
		s.mu.Lock()
		acked := s.lastDeliv
		s.mu.Unlock()
		my := &Frame{Type: TypeHello, Epoch: s.ep.epoch.Load(), Seq: acked,
			Payload: helloPayload(s.ep.cfg.Proc, s.ep.cfg.Cluster)}
		c.SetWriteDeadline(time.Now().Add(s.ep.cfg.WriteTimeout))
		if _, err := c.Write(AppendFrame(nil, my)); err != nil {
			c.Close()
			continue
		}
		c.SetReadDeadline(time.Now().Add(s.ep.cfg.DialTimeout))
		theirs, err := ReadFrame(c)
		if err != nil {
			c.Close()
			continue
		}
		if _, cluster, err := parseHello(theirs); err != nil || cluster != s.ep.cfg.Cluster {
			c.Close()
			continue
		}
		s.install(c, theirs, false)
	}
}

// adopt installs an accepted connection (acceptor side): reply with our own
// hello, then hand off to install.
func (s *session) adopt(c net.Conn, theirHello *Frame) {
	s.mu.Lock()
	acked := s.lastDeliv
	dead := s.dead
	s.mu.Unlock()
	if dead || s.ep.closed.Load() {
		c.Close()
		return
	}
	my := &Frame{Type: TypeHello, Epoch: s.ep.epoch.Load(), Seq: acked,
		Payload: helloPayload(s.ep.cfg.Proc, s.ep.cfg.Cluster)}
	c.SetWriteDeadline(time.Now().Add(s.ep.cfg.WriteTimeout))
	if _, err := c.Write(AppendFrame(nil, my)); err != nil {
		c.Close()
		return
	}
	s.install(c, theirHello, true)
}

// install makes c the session's live connection: prune acked replay entries,
// re-enqueue everything the peer has not seen, spawn the reader.
func (s *session) install(c net.Conn, theirHello *Frame, accepted bool) {
	s.mu.Lock()
	if s.dead || s.ep.closed.Load() {
		s.mu.Unlock()
		c.Close()
		return
	}
	if s.conn != nil {
		s.conn.Close()
	}
	s.conn = c
	s.connected = true
	s.lastContact = time.Now()
	if s.everConn {
		s.ep.reconnects.Add(1)
	}
	s.everConn = true
	s.ackTo(theirHello.Seq)
	// Session resumption: rebuild the pending queue as every unacked frame,
	// oldest first. The receiver dedupes on NetSeq, so frames that were
	// in flight when the old conn died are retransmitted harmlessly.
	resent := uint64(0)
	inPending := make(map[uint64]bool, len(s.pending))
	for _, seq := range s.pending {
		inPending[seq] = true
	}
	for seq := range s.frames {
		if !inPending[seq] {
			s.pending = append(s.pending, seq)
			resent++
		}
	}
	if resent > 0 {
		sortSeqs(s.pending)
		s.ep.framesResent.Add(resent)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.ep.wg.Add(1)
	go s.readLoop(c)
}

// ackTo prunes replay state the peer has confirmed. Caller holds s.mu.
func (s *session) ackTo(acked uint64) {
	if acked <= s.peerAcked {
		return
	}
	s.peerAcked = acked
	for seq := range s.frames {
		if seq <= acked {
			delete(s.frames, seq)
		}
	}
	live := s.pending[:0]
	for _, seq := range s.pending {
		if seq > acked {
			live = append(live, seq)
		}
	}
	s.pending = live
}

func sortSeqs(a []uint64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// sendLoop is the session's write pump: pop the next pending netseq, apply
// the fault hook, write with a deadline. A write failure tears the conn down
// (the dial loop or the peer's redial recovers it) and leaves the frame in
// the replay buffer for retransmission.
func (s *session) sendLoop() {
	defer s.ep.wg.Done()
	for {
		s.mu.Lock()
		for (len(s.pending) == 0 || !s.connected) && !s.dead && !s.ep.closed.Load() {
			s.cond.Wait()
		}
		if s.dead || s.ep.closed.Load() {
			s.mu.Unlock()
			return
		}
		seq := s.pending[0]
		s.pending = s.pending[1:]
		of := s.frames[seq]
		c := s.conn
		var fault ConnFault
		if of != nil && s.ep.cfg.Fault != nil && of.buf[4] == TypeData {
			idx := s.dataSent
			s.dataSent++
			fault = s.ep.cfg.Fault.OnConnSend(s.ep.cfg.Proc, s.peer, idx)
		}
		s.mu.Unlock()
		if of == nil { // acked while queued
			continue
		}
		if fault.Hang > 0 {
			time.Sleep(fault.Hang)
		}
		if fault.Drop {
			s.teardown(c)
			// The frame stays unacked; requeue it for after reconnect.
			s.mu.Lock()
			if _, live := s.frames[seq]; live {
				s.pending = append([]uint64{seq}, s.pending...)
			}
			s.mu.Unlock()
			continue
		}
		s.writeMu.Lock()
		c.SetWriteDeadline(time.Now().Add(s.ep.cfg.WriteTimeout))
		_, err := c.Write(of.buf)
		s.writeMu.Unlock()
		if err != nil {
			s.teardown(c)
			s.mu.Lock()
			if _, live := s.frames[seq]; live {
				s.pending = append([]uint64{seq}, s.pending...)
			}
			s.mu.Unlock()
			continue
		}
		s.ep.bytesSent.Add(uint64(len(of.buf)))
	}
}

// teardown drops c if it is still the session's live conn and wakes the
// dial loop.
func (s *session) teardown(c net.Conn) {
	c.Close()
	s.mu.Lock()
	if s.conn == c {
		s.conn = nil
		s.connected = false
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// readLoop drains one connection: heartbeat acks, Bye, and in-order
// deduplicated delivery of numbered frames. The read deadline doubles as the
// per-connection liveness check — a healthy peer pings every HeartbeatEvery,
// so three silent intervals mean the conn is suspect and gets torn down
// (reconnect, not death; the monitor issues dead verdicts on total silence).
func (s *session) readLoop(c net.Conn) {
	defer s.ep.wg.Done()
	readTO := 3 * s.ep.cfg.HeartbeatEvery
	for {
		c.SetReadDeadline(time.Now().Add(readTO))
		f, err := ReadFrame(c)
		if err != nil {
			s.teardown(c)
			return
		}
		s.ep.bytesRecv.Add(uint64(headerLen + len(f.Payload)))
		switch f.Type {
		case TypePing:
			s.ep.heartbeatsRecv.Add(1)
			s.mu.Lock()
			s.lastContact = time.Now()
			s.ackTo(f.Seq)
			s.mu.Unlock()
		case TypeBye:
			s.mu.Lock()
			s.peerClosed = true
			s.lastContact = time.Now()
			s.cond.Broadcast()
			s.mu.Unlock()
			s.teardown(c)
			return
		case TypeData, TypeControl, TypeFence:
			s.mu.Lock()
			s.lastContact = time.Now()
			fresh := f.NetSeq > s.lastDeliv
			if fresh {
				s.lastDeliv = f.NetSeq
			}
			s.mu.Unlock()
			if fresh && s.ep.cfg.OnFrame != nil {
				s.ep.cfg.OnFrame(s.peer, f)
			}
		case TypeHello:
			// Mid-stream hello: treat as an ack refresh.
			s.mu.Lock()
			s.lastContact = time.Now()
			s.ackTo(f.Seq)
			s.mu.Unlock()
		}
	}
}

// monitor is the session's heartbeat pump and failure detector: ping every
// interval (carrying our delivery ack), and declare the peer dead after
// PeerDeadAfter of total silence — redials included, so a transient drop
// that reconnects in time never escalates to a dead verdict.
func (s *session) monitor() {
	defer s.ep.wg.Done()
	t := time.NewTicker(s.ep.cfg.HeartbeatEvery)
	defer t.Stop()
	for range t.C {
		if s.ep.closed.Load() {
			return
		}
		s.mu.Lock()
		if s.dead {
			s.mu.Unlock()
			return
		}
		// A peer that said Bye stops being pinged (its conn is gone) but the
		// silence clock keeps running: if this process still needs its
		// contributions — the peer exited early, or Close raced a straggler
		// past the drain window — the verdict below converts the graceful
		// exit into the same dead-peer signal a crash would have produced,
		// instead of an unbounded wait.
		silent := time.Since(s.lastContact)
		c := s.conn
		acked := s.lastDeliv
		if silent > s.ep.cfg.PeerDeadAfter {
			s.dead = true
			s.cond.Broadcast()
			s.mu.Unlock()
			if c != nil {
				c.Close()
			}
			s.ep.peersLost.Add(1)
			if s.ep.cfg.OnPeerDead != nil {
				s.ep.cfg.OnPeerDead(s.peer)
			}
			return
		}
		s.mu.Unlock()
		if c == nil {
			continue
		}
		ping := AppendFrame(nil, &Frame{Type: TypePing, Epoch: s.ep.epoch.Load(), Seq: acked})
		s.writeMu.Lock()
		c.SetWriteDeadline(time.Now().Add(s.ep.cfg.WriteTimeout))
		_, err := c.Write(ping)
		s.writeMu.Unlock()
		if err != nil {
			s.teardown(c)
			continue
		}
		s.ep.heartbeatsSent.Add(1)
	}
}
