// Package wire is the cross-process transport under the comm layer's socket
// backend: length-prefixed CRC-framed messages over TCP or Unix sockets, one
// endpoint per OS process, full-mesh peer sessions with heartbeat-based
// failure detection, per-connection read/write deadlines, and reconnect with
// capped exponential backoff plus session resumption (a replay buffer keyed
// by a per-session sequence number), so a transient connection drop degrades
// to a retransmit instead of a lost contribution.
//
// The frame codec is canonical: one byte sequence per frame, little-endian
// fixed-width header, CRC-32C over header and payload. Decoding is strict —
// torn, truncated, oversized or corrupted frames are rejected with typed
// errors, never silently repaired (FuzzWireFrame locks this in).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame types. Data and Control carry comm-layer collective contributions;
// the remaining types are session-internal (handshake, liveness, flow).
const (
	// TypeData is a fault-interceptable data-plane collective contribution.
	TypeData uint8 = iota
	// TypeControl is a control-plane contribution (votes, fences): never
	// fault-injected, never dropped by the network fault hooks.
	TypeControl
	// TypeHello opens or resumes a session: payload carries the cluster ID;
	// Seq carries the highest NetSeq the sender has delivered, so the peer
	// retransmits everything after it.
	TypeHello
	// TypePing is a heartbeat; Seq acknowledges the highest delivered NetSeq
	// so the peer can prune its replay buffer.
	TypePing
	// TypeFence is a process-level barrier marker (world epoch transitions).
	TypeFence
	// TypeBye announces a graceful close; the peer must not treat the
	// connection loss as a failure.
	TypeBye
	// TypeAuth carries an HMAC-SHA256 handshake proof (see Endpoint: the
	// hello exchange becomes a mutual challenge–response when the world has
	// a shared secret). Payload is the raw MAC.
	TypeAuth
	// TypeReject refuses a handshake before the session is installed. The
	// payload's first byte is the reason (rejectAuth, rejectSealed); the
	// receiver must not retry the handshake for rejectAuth.
	TypeReject
	numFrameTypes
)

// Flag bits carried by data/control contributions (the fault-envelope
// metadata of the in-process transport, made explicit on the wire).
const (
	// FlagWithheld marks a stalled contribution: the rank arrived at the
	// rendezvous but posted no payload.
	FlagWithheld uint8 = 1 << iota
	// FlagFailed marks a contribution that failed outright.
	FlagFailed
	// FlagDead marks a fail-stopped rank's zombie contribution.
	FlagDead
)

// Frame is one wire message. Comm/Seq/Rank address a collective contribution
// (communicator id, per-communicator collective number, sender's member
// index); Epoch and Gen pin it to a world epoch and a run generation so
// stale frames from a previous epoch or a previous World.Run cannot alias a
// live collective. NetSeq is the per-session delivery number used for
// resume-after-reconnect dedup (0 on session-internal frames).
type Frame struct {
	Type    uint8
	Flags   uint8
	Epoch   uint32
	Gen     uint32
	Comm    uint32
	Seq     uint64
	Rank    int32
	NetSeq  uint64
	Payload []byte
}

// Header layout, after the 4-byte magic:
//
//	offset  size  field
//	     0     4  magic "GWF1"
//	     4     1  type
//	     5     1  flags
//	     6     2  reserved (must be zero)
//	     8     4  epoch
//	    12     4  gen
//	    16     4  comm
//	    20     8  seq
//	    28     4  rank (two's complement)
//	    32     8  netseq
//	    40     4  payload length
//	    44     4  CRC-32C over bytes [0, 44) and the payload
//	    48     …  payload
const (
	frameMagic = "GWF1"
	headerLen  = 48
	crcOff     = 44
	// MaxPayload bounds a single frame. Collective payloads at bench scales
	// are a few MB at most; anything bigger is a protocol error, not data.
	MaxPayload = 1 << 28
)

// Typed decode errors. All wrap ErrFrame so callers can match the class.
var (
	// ErrFrame is the class sentinel for malformed frames.
	ErrFrame = errors.New("wire: malformed frame")
	// ErrBadMagic marks a frame that does not open with the magic — a
	// desynchronized or foreign stream.
	ErrBadMagic = fmt.Errorf("%w: bad magic", ErrFrame)
	// ErrShortFrame marks a frame truncated below its declared length.
	ErrShortFrame = fmt.Errorf("%w: truncated", ErrFrame)
	// ErrFrameTooLarge marks a declared payload length over MaxPayload.
	ErrFrameTooLarge = fmt.Errorf("%w: payload too large", ErrFrame)
	// ErrBadChecksum marks a CRC mismatch: the frame was torn or corrupted
	// in transit.
	ErrBadChecksum = fmt.Errorf("%w: checksum mismatch", ErrFrame)
	// ErrBadType marks an unknown frame type or nonzero reserved bytes.
	ErrBadType = fmt.Errorf("%w: unknown type", ErrFrame)
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends f's canonical encoding to dst and returns the extended
// slice.
func AppendFrame(dst []byte, f *Frame) []byte {
	if len(f.Payload) > MaxPayload {
		panic(fmt.Sprintf("wire: frame payload %d exceeds MaxPayload", len(f.Payload)))
	}
	base := len(dst)
	dst = append(dst, frameMagic...)
	dst = append(dst, f.Type, f.Flags, 0, 0)
	dst = binary.LittleEndian.AppendUint32(dst, f.Epoch)
	dst = binary.LittleEndian.AppendUint32(dst, f.Gen)
	dst = binary.LittleEndian.AppendUint32(dst, f.Comm)
	dst = binary.LittleEndian.AppendUint64(dst, f.Seq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(f.Rank))
	dst = binary.LittleEndian.AppendUint64(dst, f.NetSeq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Payload)))
	crc := crc32.Update(0, castagnoli, dst[base:base+crcOff])
	crc = crc32.Update(crc, castagnoli, f.Payload)
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	return append(dst, f.Payload...)
}

// DecodeFrame parses one frame from the front of b, returning the frame and
// the number of bytes consumed. The returned payload aliases b. A short
// buffer returns ErrShortFrame (read more and retry); every other error is
// permanent for that stream position.
func DecodeFrame(b []byte) (*Frame, int, error) {
	if len(b) < headerLen {
		return nil, 0, ErrShortFrame
	}
	if string(b[:4]) != frameMagic {
		return nil, 0, ErrBadMagic
	}
	if b[4] >= numFrameTypes {
		return nil, 0, fmt.Errorf("%w %d", ErrBadType, b[4])
	}
	if b[6] != 0 || b[7] != 0 {
		return nil, 0, fmt.Errorf("%w: nonzero reserved bytes", ErrBadType)
	}
	plen := binary.LittleEndian.Uint32(b[40:44])
	if plen > MaxPayload {
		return nil, 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, plen)
	}
	total := headerLen + int(plen)
	if len(b) < total {
		return nil, 0, ErrShortFrame
	}
	want := binary.LittleEndian.Uint32(b[crcOff : crcOff+4])
	crc := crc32.Update(0, castagnoli, b[:crcOff])
	crc = crc32.Update(crc, castagnoli, b[headerLen:total])
	if crc != want {
		return nil, 0, ErrBadChecksum
	}
	f := &Frame{
		Type:   b[4],
		Flags:  b[5],
		Epoch:  binary.LittleEndian.Uint32(b[8:12]),
		Gen:    binary.LittleEndian.Uint32(b[12:16]),
		Comm:   binary.LittleEndian.Uint32(b[16:20]),
		Seq:    binary.LittleEndian.Uint64(b[20:28]),
		Rank:   int32(binary.LittleEndian.Uint32(b[28:32])),
		NetSeq: binary.LittleEndian.Uint64(b[32:40]),
	}
	if plen > 0 {
		f.Payload = b[headerLen:total]
	}
	return f, total, nil
}

// ReadFrame reads exactly one frame from r, allocating its payload (the
// result does not alias any reader buffer). A clean EOF before the first
// byte returns io.EOF; EOF mid-frame returns ErrShortFrame.
func ReadFrame(r io.Reader) (*Frame, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, ErrShortFrame
	}
	plen := binary.LittleEndian.Uint32(hdr[40:44])
	if plen > MaxPayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, plen)
	}
	buf := make([]byte, headerLen+int(plen))
	copy(buf, hdr[:])
	if plen > 0 {
		if _, err := io.ReadFull(r, buf[headerLen:]); err != nil {
			return nil, ErrShortFrame
		}
	}
	f, _, err := DecodeFrame(buf)
	return f, err
}
