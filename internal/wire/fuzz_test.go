package wire

import (
	"bytes"
	"testing"
)

// FuzzWireFrame drives arbitrary bytes through DecodeFrame and checks the
// codec invariants: decoding never panics, a successful decode consumes a
// plausible byte count and re-encodes to exactly the bytes it consumed
// (canonical encoding — no two byte sequences decode to the same frame),
// and a decoded frame always survives an Append/Decode round trip.
func FuzzWireFrame(f *testing.F) {
	f.Add(AppendFrame(nil, sampleFrame()))
	f.Add(AppendFrame(nil, &Frame{Type: TypePing, Seq: 9}))
	f.Add(AppendFrame(nil, &Frame{Type: TypeHello, Payload: []byte("cluster")}))
	f.Add([]byte(frameMagic))
	f.Add([]byte("GWF1\x00\x00\x00\x00garbage that is long enough to cover the header region entirely"))
	f.Add(bytes.Repeat([]byte{0xff}, headerLen+8))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			if fr != nil || n != 0 {
				t.Fatalf("decode error %v but returned frame=%v n=%d", err, fr, n)
			}
			return
		}
		if n < headerLen || n > len(data) {
			t.Fatalf("decoded n=%d out of range (len=%d)", n, len(data))
		}
		if n != headerLen+len(fr.Payload) {
			t.Fatalf("consumed %d bytes for %d-byte payload", n, len(fr.Payload))
		}
		re := AppendFrame(nil, fr)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("non-canonical encoding: re-encode differs from consumed bytes")
		}
		// Round trip through the stream reader as well.
		fr2, err := ReadFrame(bytes.NewReader(data[:n]))
		if err != nil {
			t.Fatalf("ReadFrame failed on bytes DecodeFrame accepted: %v", err)
		}
		if fr2.Type != fr.Type || fr2.Flags != fr.Flags || fr2.Epoch != fr.Epoch ||
			fr2.Gen != fr.Gen || fr2.Comm != fr.Comm || fr2.Seq != fr.Seq ||
			fr2.Rank != fr.Rank || fr2.NetSeq != fr.NetSeq || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("ReadFrame/DecodeFrame disagree: %+v vs %+v", fr2, fr)
		}
	})
}
