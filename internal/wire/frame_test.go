package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func sampleFrame() *Frame {
	return &Frame{
		Type:    TypeData,
		Flags:   FlagWithheld | FlagDead,
		Epoch:   3,
		Gen:     7,
		Comm:    2,
		Seq:     0xdeadbeefcafe,
		Rank:    -5,
		NetSeq:  991,
		Payload: []byte("hello collective"),
	}
}

func TestFrameRoundTrip(t *testing.T) {
	frames := []*Frame{
		sampleFrame(),
		{Type: TypePing, Seq: 42},
		{Type: TypeHello, Payload: []byte("cluster-id")},
		{Type: TypeControl, Epoch: ^uint32(0), Gen: ^uint32(0), Comm: ^uint32(0), Seq: ^uint64(0), Rank: -1, NetSeq: ^uint64(0)},
		{Type: TypeBye},
		{Type: TypeFence, Epoch: 1, Payload: make([]byte, 4096)},
	}
	var buf []byte
	for _, f := range frames {
		buf = AppendFrame(buf, f)
	}
	rest := buf
	for i, want := range frames {
		got, n, err := DecodeFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		rest = rest[n:]
		if got.Type != want.Type || got.Flags != want.Flags || got.Epoch != want.Epoch ||
			got.Gen != want.Gen || got.Comm != want.Comm || got.Seq != want.Seq ||
			got.Rank != want.Rank || got.NetSeq != want.NetSeq || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: round trip mismatch: got %+v want %+v", i, got, want)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after decoding all frames", len(rest))
	}
}

func TestFrameReaderRoundTrip(t *testing.T) {
	want := sampleFrame()
	enc := AppendFrame(nil, want)
	r := bytes.NewReader(enc)
	got, err := ReadFrame(r)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if got.Seq != want.Seq || !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("ReadFrame mismatch: got %+v want %+v", got, want)
	}
	if _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("expected io.EOF at stream end, got %v", err)
	}
}

func TestFrameTornRejected(t *testing.T) {
	enc := AppendFrame(nil, sampleFrame())
	for cut := 1; cut < len(enc); cut++ {
		if _, _, err := DecodeFrame(enc[:cut]); !errors.Is(err, ErrShortFrame) {
			t.Fatalf("cut=%d: want ErrShortFrame, got %v", cut, err)
		}
		if _, err := ReadFrame(bytes.NewReader(enc[:cut])); !errors.Is(err, ErrShortFrame) {
			t.Fatalf("cut=%d: reader: want ErrShortFrame, got %v", cut, err)
		}
	}
}

func TestFrameCorruptionRejected(t *testing.T) {
	enc := AppendFrame(nil, sampleFrame())
	// Flipping any single bit anywhere in the frame must fail decode:
	// header corruption trips magic/type/reserved/length checks or the
	// CRC; payload corruption trips the CRC.
	for i := 0; i < len(enc); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := bytes.Clone(enc)
			mut[i] ^= 1 << bit
			if _, _, err := DecodeFrame(mut); !errors.Is(err, ErrFrame) {
				t.Fatalf("byte %d bit %d: corruption decoded cleanly (err=%v)", i, bit, err)
			}
		}
	}
}

func TestFrameBadMagic(t *testing.T) {
	enc := AppendFrame(nil, sampleFrame())
	enc[0] = 'X'
	if _, _, err := DecodeFrame(enc); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

func TestFrameBadType(t *testing.T) {
	enc := AppendFrame(nil, &Frame{Type: TypePing})
	enc[4] = numFrameTypes + 3
	if _, _, err := DecodeFrame(enc); !errors.Is(err, ErrBadType) {
		t.Fatalf("want ErrBadType, got %v", err)
	}
}

func TestFrameOversizeRejected(t *testing.T) {
	enc := AppendFrame(nil, &Frame{Type: TypeData})
	binary.LittleEndian.PutUint32(enc[40:44], MaxPayload+1)
	if _, _, err := DecodeFrame(enc); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("decode: want ErrFrameTooLarge, got %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader(enc)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("reader: want ErrFrameTooLarge, got %v", err)
	}
}

func TestFrameDuplicateAndReorderDetectable(t *testing.T) {
	// The codec itself decodes duplicated or reordered frames cleanly —
	// rejecting them is the session layer's job via NetSeq. This test
	// pins the invariant the session layer depends on: distinct NetSeq
	// values survive the trip, so duplicates and reorders are visible.
	a := &Frame{Type: TypeData, NetSeq: 1, Payload: []byte("a")}
	b := &Frame{Type: TypeData, NetSeq: 2, Payload: []byte("b")}
	stream := AppendFrame(nil, b) // reordered
	stream = AppendFrame(stream, a)
	stream = AppendFrame(stream, a) // duplicated

	var seqs []uint64
	for len(stream) > 0 {
		f, n, err := DecodeFrame(stream)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		seqs = append(seqs, f.NetSeq)
		stream = stream[n:]
	}
	if len(seqs) != 3 || seqs[0] != 2 || seqs[1] != 1 || seqs[2] != 1 {
		t.Fatalf("NetSeq sequence not preserved: %v", seqs)
	}
}
