package wire

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testTimings are aggressive so failure-detector tests finish in tens of
// milliseconds instead of seconds.
func testConfig(proc int, addrs []string) Config {
	return Config{
		Proc:           proc,
		Addrs:          addrs,
		Cluster:        "t",
		HeartbeatEvery: 10 * time.Millisecond,
		PeerDeadAfter:  300 * time.Millisecond,
		DialTimeout:    200 * time.Millisecond,
		WriteTimeout:   200 * time.Millisecond,
		BackoffBase:    2 * time.Millisecond,
		BackoffCap:     20 * time.Millisecond,
	}
}

func unixAddrs(t *testing.T, n int) []string {
	t.Helper()
	dir := t.TempDir()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "unix:" + filepath.Join(dir, fmt.Sprintf("p%d.sock", i))
	}
	return addrs
}

// sink collects delivered frames per peer, in arrival order.
type sink struct {
	mu     sync.Mutex
	frames map[int][]*Frame
	dead   map[int]bool
	notify chan struct{}
}

func newSink() *sink {
	return &sink{frames: make(map[int][]*Frame), dead: make(map[int]bool), notify: make(chan struct{}, 1)}
}

func (s *sink) onFrame(peer int, f *Frame) {
	s.mu.Lock()
	s.frames[peer] = append(s.frames[peer], f)
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

func (s *sink) onDead(peer int) {
	s.mu.Lock()
	s.dead[peer] = true
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

func (s *sink) waitFrames(t *testing.T, peer, n int, timeout time.Duration) []*Frame {
	t.Helper()
	deadline := time.After(timeout)
	for {
		s.mu.Lock()
		got := len(s.frames[peer])
		s.mu.Unlock()
		if got >= n {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.frames[peer]
		}
		select {
		case <-s.notify:
		case <-deadline:
			t.Fatalf("timed out waiting for %d frames from peer %d (have %d)", n, peer, got)
		}
	}
}

func (s *sink) waitDead(t *testing.T, peer int, timeout time.Duration) {
	t.Helper()
	deadline := time.After(timeout)
	for {
		s.mu.Lock()
		d := s.dead[peer]
		s.mu.Unlock()
		if d {
			return
		}
		select {
		case <-s.notify:
		case <-deadline:
			t.Fatalf("timed out waiting for peer %d dead verdict", peer)
		}
	}
}

func startGroup(t *testing.T, n int, mutate func(proc int, cfg *Config)) ([]*Endpoint, []*sink) {
	t.Helper()
	addrs := unixAddrs(t, n)
	eps := make([]*Endpoint, n)
	sinks := make([]*sink, n)
	for i := 0; i < n; i++ {
		sinks[i] = newSink()
		cfg := testConfig(i, addrs)
		cfg.OnFrame = sinks[i].onFrame
		cfg.OnPeerDead = sinks[i].onDead
		if mutate != nil {
			mutate(i, &cfg)
		}
		ep, err := Listen(cfg)
		if err != nil {
			t.Fatalf("listen proc %d: %v", i, err)
		}
		eps[i] = ep
		t.Cleanup(func() { ep.Close() })
	}
	return eps, sinks
}

func TestEndpointAllToAllDelivery(t *testing.T) {
	const procs, msgs = 3, 20
	eps, sinks := startGroup(t, procs, nil)
	for i := 0; i < procs; i++ {
		for j := 0; j < procs; j++ {
			if i == j {
				continue
			}
			for k := 0; k < msgs; k++ {
				f := &Frame{Type: TypeData, Comm: uint32(i), Seq: uint64(k),
					Payload: []byte(fmt.Sprintf("p%d->p%d #%d", i, j, k))}
				if err := eps[i].Send(j, f); err != nil {
					t.Fatalf("send %d->%d: %v", i, j, err)
				}
			}
		}
	}
	for j := 0; j < procs; j++ {
		for i := 0; i < procs; i++ {
			if i == j {
				continue
			}
			got := sinks[j].waitFrames(t, i, msgs, 5*time.Second)
			for k, f := range got[:msgs] {
				if f.Seq != uint64(k) || string(f.Payload) != fmt.Sprintf("p%d->p%d #%d", i, j, k) {
					t.Fatalf("proc %d from %d frame %d: out of order or corrupt: %+v", j, i, k, f)
				}
			}
		}
	}
}

// dropNth closes the connection right before the Nth data frame is written.
type dropNth struct {
	n    uint64
	hits atomic.Uint64
}

func (d *dropNth) OnConnSend(local, peer int, idx uint64) ConnFault {
	if idx == d.n && d.hits.CompareAndSwap(0, 1) {
		return ConnFault{Drop: true}
	}
	return ConnFault{}
}

func TestEndpointReconnectResumesStream(t *testing.T) {
	const msgs = 40
	drop := &dropNth{n: 7}
	eps, sinks := startGroup(t, 2, func(proc int, cfg *Config) {
		if proc == 1 {
			cfg.Fault = drop
		}
	})
	for k := 0; k < msgs; k++ {
		if err := eps[1].Send(0, &Frame{Type: TypeData, Seq: uint64(k)}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	got := sinks[0].waitFrames(t, 1, msgs, 5*time.Second)
	for k, f := range got[:msgs] {
		if f.Seq != uint64(k) {
			t.Fatalf("frame %d: got seq %d (duplicate or reorder after reconnect)", k, f.Seq)
		}
	}
	if drop.hits.Load() == 0 {
		t.Fatal("drop fault never fired")
	}
	// The drop must have healed via redial, not a dead verdict.
	if eps[0].PeerDead(1) || eps[1].PeerDead(0) {
		t.Fatal("transient drop escalated to a dead verdict")
	}
	if s := eps[1].Stats(); s.Reconnects == 0 {
		t.Fatalf("expected a reconnect after the drop, stats=%+v", s)
	}
}

// hangNth pauses the write pump long enough to trip the read-deadline
// suspicion on the peer, but far short of the dead budget.
type hangNth struct {
	n    uint64
	dur  time.Duration
	hits atomic.Uint64
}

func (h *hangNth) OnConnSend(local, peer int, idx uint64) ConnFault {
	if idx == h.n && h.hits.CompareAndSwap(0, 1) {
		return ConnFault{Hang: h.dur}
	}
	return ConnFault{}
}

func TestEndpointHangRecoversWithoutDeath(t *testing.T) {
	const msgs = 10
	hang := &hangNth{n: 3, dur: 60 * time.Millisecond} // > 3 heartbeats, << dead budget
	eps, sinks := startGroup(t, 2, func(proc int, cfg *Config) {
		if proc == 1 {
			cfg.Fault = hang
		}
	})
	for k := 0; k < msgs; k++ {
		if err := eps[1].Send(0, &Frame{Type: TypeData, Seq: uint64(k)}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	got := sinks[0].waitFrames(t, 1, msgs, 5*time.Second)
	for k, f := range got[:msgs] {
		if f.Seq != uint64(k) {
			t.Fatalf("frame %d: got seq %d", k, f.Seq)
		}
	}
	if hang.hits.Load() == 0 {
		t.Fatal("hang fault never fired")
	}
	if eps[0].PeerDead(1) || eps[1].PeerDead(0) {
		t.Fatal("hang shorter than the dead budget escalated to a dead verdict")
	}
}

func TestEndpointAbortTriggersDeadVerdict(t *testing.T) {
	eps, sinks := startGroup(t, 2, nil)
	// Establish traffic both ways first.
	Must0(eps[0].Send(1, &Frame{Type: TypeData, Seq: 1}))
	Must0(eps[1].Send(0, &Frame{Type: TypeData, Seq: 1}))
	sinks[0].waitFrames(t, 1, 1, 5*time.Second)
	sinks[1].waitFrames(t, 0, 1, 5*time.Second)

	eps[1].Abort() // silent disappearance: no Bye
	sinks[0].waitDead(t, 1, 5*time.Second)
	if !eps[0].PeerDead(1) {
		t.Fatal("PeerDead(1) false after dead verdict")
	}
	if err := eps[0].Send(1, &Frame{Type: TypeData, Seq: 2}); err == nil {
		t.Fatal("Send to dead peer succeeded")
	}
	if s := eps[0].Stats(); s.PeersLost != 1 {
		t.Fatalf("PeersLost = %d, want 1", s.PeersLost)
	}
}

func TestEndpointGracefulCloseDefersDeadVerdict(t *testing.T) {
	eps, sinks := startGroup(t, 2, nil)
	Must0(eps[1].Send(0, &Frame{Type: TypeData, Seq: 1}))
	sinks[0].waitFrames(t, 1, 1, 5*time.Second)

	eps[1].Close() // polite Bye
	// Within the silence budget a Bye is a graceful exit, not a failure:
	// SPMD peers that finish their schedules within it part without any
	// dead verdict.
	time.Sleep(150 * time.Millisecond)
	sinks[0].mu.Lock()
	dead := sinks[0].dead[1]
	sinks[0].mu.Unlock()
	if dead {
		t.Fatal("dead verdict inside the silence budget of a graceful Close")
	}
	// Past the budget the verdict fires anyway: a departed peer that is
	// still needed — it exited early, or its Bye raced a straggler past the
	// drain window — must surface as dead, never as an unbounded wait.
	sinks[0].waitDead(t, 1, 5*time.Second)
}

func TestEndpointStatsCounters(t *testing.T) {
	eps, sinks := startGroup(t, 2, nil)
	Must0(eps[0].Send(1, &Frame{Type: TypeData, Payload: []byte("x")}))
	sinks[1].waitFrames(t, 0, 1, 5*time.Second)
	time.Sleep(50 * time.Millisecond) // a few heartbeat intervals
	s := eps[0].Stats()
	if s.BytesSent == 0 || s.HeartbeatsSent == 0 {
		t.Fatalf("counters not advancing: %+v", s)
	}
}

// Must0 fails the calling test indirectly by panicking; endpoint tests use
// it for sends that cannot legitimately fail.
func Must0(err error) {
	if err != nil {
		panic(err)
	}
}
